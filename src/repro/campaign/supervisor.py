"""The campaign supervisor: lease, reclaim, retry, quarantine, resume.

One :class:`Campaign` owns a directory::

    <dir>/campaign.json   the expanded spec + cell list (written once)
    <dir>/queue.jsonl     append-only lease/retry/quarantine event log
    <dir>/ledger.jsonl    the shared RunLedger — source of truth for
                          completed cells (one record per cell, plus
                          manifest / resume / finish records)

The supervisor is the **single writer** of both JSONL files: workers
never touch disk, they stream rows back over a queue.  That keeps the
ledger's atomic-rewrite flush single-writer-safe and makes the whole
campaign resumable from any crash point — on resume, the ledger
reconciles the queue (a cell recorded complete is *never* re-executed)
and stale leases from the dead supervisor are released without
charging an attempt.

Failure handling at campaign scope mirrors the per-grid
:class:`~repro.resilience.supervisor.ResiliencePolicy`: failed cells
retry with exponential backoff + deterministic jitter
(:func:`~repro.campaign.queue.retry_delay`), cells failing
``max_attempts`` times are quarantined (poison-cell records in queue
*and* ledger — the campaign keeps going), expired leases are reclaimed
by killing and respawning the worker, and when worker processes cannot
be spawned at all the campaign degrades to serial in-process
execution.  SIGINT/SIGTERM flush and release cleanly, so interruption
at any point resumes bit-identically — every cell is an independent
seeded run.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_mod
import signal
import time
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..errors import ConfigError
from ..obs.ledger import RunLedger, git_state, new_run_id
from ..resilience import faults
from ..resilience.atomic import atomic_write_json
from .queue import (
    DONE,
    LEASED,
    PENDING,
    QUARANTINED,
    CellState,
    WorkQueue,
    read_queue_events,
    retry_delay,
)
from .spec import CAMPAIGN_SCHEMA, CampaignSpec
from .worker import execute_cell, worker_main

CAMPAIGN_FILE = "campaign.json"
QUEUE_FILE = "queue.jsonl"
LEDGER_FILE = "ledger.jsonl"
SERIES_FILE = "campaign_series.jsonl"

#: Minimum seconds between idle campaign samples (state changes always
#: sample immediately).
SERIES_INTERVAL_S = 0.5

#: Zeroed metrics recorded for quarantined (poison) cells.
_ZERO_METRICS = {key: 0 for key in ("ipc", "speedup", "accuracy",
                                    "coverage", "issued", "useful",
                                    "late", "dropped")}


@dataclass
class CampaignStats:
    """Campaign-scope resilience accounting for one supervisor run."""

    leases: int = 0
    completed: int = 0
    reconciled: int = 0
    retries: int = 0
    expirations: int = 0
    worker_crashes: int = 0
    quarantined: int = 0
    serial_fallback: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "leases": self.leases,
            "completed": self.completed,
            "reconciled": self.reconciled,
            "retries": self.retries,
            "expirations": self.expirations,
            "worker_crashes": self.worker_crashes,
            "quarantined": self.quarantined,
            "serial_fallback": self.serial_fallback,
        }

    def summary(self) -> str:
        parts = [f"cells: {self.completed} completed"]
        if self.reconciled:
            parts.append(f"{self.reconciled} reconciled")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.expirations:
            parts.append(f"{self.expirations} lease(s) expired")
        if self.worker_crashes:
            parts.append(f"{self.worker_crashes} worker crash(es)")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.serial_fallback:
            parts.append("serial fallback")
        return ", ".join(parts)


class CampaignSeriesSampler:
    """Single-writer appender behind ``<dir>/campaign_series.jsonl``.

    Only the supervisor writes here, in append mode with a flush per
    record, so a SIGKILL tears at most the final line — which
    :func:`repro.obs.timeseries.read_campaign_series` drops — and a
    resumed supervisor simply keeps appending to the same log.  Every
    record is ``kind: "campaign_sample"``; the ``event`` field marks
    run boundaries (``start``/``sample``/``finish``).  Idle ticks are
    throttled to :data:`SERIES_INTERVAL_S`; queue-state changes sample
    immediately so short campaigns still land every transition.
    """

    def __init__(self, path: Union[str, Path],
                 interval_s: float = SERIES_INTERVAL_S):
        self.path = Path(path)
        self.interval_s = interval_s
        self._fh = self.path.open("a", encoding="utf-8")
        self._t0 = time.time()
        self._last_wall = float("-inf")
        self._last_state: Optional[tuple] = None
        self.per_worker: Dict[str, int] = {}

    def note_done(self, worker_id: str) -> None:
        """Count one completed cell against ``worker_id``."""
        self.per_worker[worker_id] = self.per_worker.get(worker_id, 0) + 1

    def sample(self, queue: WorkQueue, stats: CampaignStats,
               event: str = "sample", force: bool = False) -> None:
        """Append one sample unless idle and inside the throttle window."""
        counts = queue.counts()
        state = (tuple(sorted(counts.items())), stats.completed,
                 stats.retries, stats.quarantined, stats.leases)
        now = time.time()
        if not force and state == self._last_state \
                and now - self._last_wall < self.interval_s:
            return
        self._last_state = state
        self._last_wall = now
        record = {
            "schema": 1,
            "kind": "campaign_sample",
            "event": event,
            "t": round(now - self._t0, 3),
            "counts": counts,
            "queue_depth": counts.get(PENDING, 0) + counts.get(LEASED, 0),
            "completed": stats.completed,
            "retries": stats.retries,
            "expirations": stats.expirations,
            "worker_crashes": stats.worker_crashes,
            "quarantined": stats.quarantined,
            "per_worker": dict(sorted(self.per_worker.items())),
        }
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            pass  # telemetry must never take the campaign down

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass


class _WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, worker_id: str, process, task_q):
        self.worker_id = worker_id
        self.process = process
        self.task_q = task_q
        #: Key of the cell this worker is currently leasing, if any.
        self.busy: Optional[str] = None


class Campaign:
    """One campaign directory: spec + queue + ledger + supervisor loop."""

    def __init__(self, directory: Union[str, Path], spec: CampaignSpec,
                 queue: WorkQueue, ledger: RunLedger,
                 fault_spec: Optional[str] = None):
        self.directory = Path(directory)
        self.spec = spec
        self.queue = queue
        self.ledger = ledger
        self.fault_spec = fault_spec
        self.stats = CampaignStats()
        self._series: Optional[CampaignSeriesSampler] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, directory: Union[str, Path], spec: CampaignSpec,
               argv: Optional[List[str]] = None,
               fault_spec: Optional[str] = None) -> "Campaign":
        """Initialise a campaign directory from an expanded spec."""
        directory = Path(directory)
        if (directory / CAMPAIGN_FILE).exists():
            raise ConfigError(
                f"campaign already exists: {directory / CAMPAIGN_FILE} "
                "(use 'repro campaign resume' to continue it)")
        directory.mkdir(parents=True, exist_ok=True)
        cells = spec.expand()
        run_id = new_run_id()
        atomic_write_json(directory / CAMPAIGN_FILE, {
            "schema": CAMPAIGN_SCHEMA,
            "run_id": run_id,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime()),
            "git": git_state(),
            "fault_spec": fault_spec,
            "spec": spec.to_dict(),
            "cells": [cell.to_dict() for cell in cells],
        })
        ledger = RunLedger(directory / LEDGER_FILE, run_id)
        ledger.write_manifest("campaign", list(argv or []), spec.to_dict(),
                              seeds=list(spec.seeds))
        queue = WorkQueue.create(directory / QUEUE_FILE,
                                 [cell.to_dict() for cell in cells])
        return cls(directory, spec, queue, ledger, fault_spec=fault_spec)

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "Campaign":
        """Reopen an existing campaign directory (resume/status)."""
        directory = Path(directory)
        meta = cls.read_meta(directory)
        spec = CampaignSpec.from_dict(meta["spec"])
        queue = WorkQueue.open(directory / QUEUE_FILE, meta["cells"])
        ledger = RunLedger.load(directory / LEDGER_FILE)
        return cls(directory, spec, queue, ledger,
                   fault_spec=meta.get("fault_spec"))

    @staticmethod
    def read_meta(directory: Union[str, Path]) -> Dict[str, object]:
        path = Path(directory) / CAMPAIGN_FILE
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigError(f"not a campaign directory: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(f"corrupt {path}: {exc}") from None
        if meta.get("schema") != CAMPAIGN_SCHEMA:
            raise ConfigError(
                f"{path}: campaign schema {meta.get('schema')!r} "
                f"(this build reads {CAMPAIGN_SCHEMA})")
        return meta

    # -- resume --------------------------------------------------------------

    def reconcile(self) -> None:
        """Align the queue with the ledger after a supervisor death.

        The ledger is the source of truth for completed work: any cell
        it records as ok/retried is marked done in the queue (it will
        never be re-executed), quarantined records re-quarantine, and
        leases held by the dead supervisor's workers are released back
        to pending without charging an attempt.
        """
        recorded: Dict[str, Dict[str, object]] = {}
        for record in self.ledger._records:
            if record.get("kind") == "cell" and record.get("key"):
                recorded[str(record["key"])] = record  # last write wins
        for key, record in recorded.items():
            cell = self.queue.cells.get(key)
            if cell is None:
                continue
            outcome = str(record.get("outcome", "ok"))
            if outcome in ("ok", "retried", "restored") \
                    and cell.state != DONE:
                self.queue.complete(key, worker="reconcile")
                self.stats.reconciled += 1
            elif outcome == "quarantined" and cell.state != QUARANTINED:
                self.queue.quarantine(key, str(record.get("error") or
                                               "quarantined"))
        for cell in self.queue.leased():
            self.queue.release(cell.key)

    # -- the supervisor loop -------------------------------------------------

    def run(self, workers: Optional[int] = None,
            stop_after: Optional[int] = None,
            echo: Callable[[str], None] = print,
            series: bool = False) -> Dict[str, object]:
        """Drive the campaign until finished, stopped, or interrupted.

        Returns a summary dict (``finished``, ``interrupted``,
        ``counts``, ``stats``).  Installs SIGINT/SIGTERM handlers for
        the duration: the first signal stops leasing, flushes the
        queue/ledger, and releases outstanding leases so ``repro
        campaign resume`` continues bit-identically.  With ``series``
        the supervisor appends queue-depth / throughput / retry samples
        to ``<dir>/campaign_series.jsonl`` as it goes (pure telemetry:
        results are unaffected).
        """
        n_workers = self.spec.workers if workers is None else workers
        plan = (faults.FaultPlan.parse(self.fault_spec)
                if self.fault_spec else None)
        start = time.perf_counter()
        stop_flag = {"stop": False}
        if series:
            self._series = CampaignSeriesSampler(
                self.directory / SERIES_FILE)
            self._series.sample(self.queue, self.stats, event="start",
                                force=True)

        def _on_signal(signum, frame):  # noqa: ARG001
            stop_flag["stop"] = True

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _on_signal)
            except ValueError:
                pass  # not the main thread (tests drive us directly)
        interrupted = False
        try:
            with faults.injected(plan):
                if n_workers <= 0:
                    interrupted = self._run_serial(stop_flag, stop_after,
                                                   echo)
                else:
                    interrupted = self._run_pool(n_workers, plan, stop_flag,
                                                 stop_after, echo)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            if self._series is not None:
                self._series.sample(self.queue, self.stats, event="finish",
                                    force=True)
                self._series.close()
                self._series = None
        finished = self.queue.finished()
        wall_s = time.perf_counter() - start
        self.ledger.finish(wall_s, status="ok" if finished
                           else "interrupted",
                           resilience={"campaign": self.stats.to_dict()})
        return {
            "finished": finished,
            "interrupted": interrupted and not finished,
            "counts": self.queue.counts(),
            "quarantined": [cell.key for cell in self.queue.quarantined()],
            "stats": self.stats.to_dict(),
            "wall_s": wall_s,
        }

    def _run_pool(self, n_workers: int, plan, stop_flag: Dict[str, bool],
                  stop_after: Optional[int],
                  echo: Callable[[str], None]) -> bool:
        ctx = multiprocessing.get_context()
        result_q = ctx.Queue()
        handles: Dict[str, _WorkerHandle] = {}
        worker_ids = count(1)
        context = {
            "loads": self.spec.loads,
            "budget": self.spec.budget,
            "engine": self.spec.engine,
            "lease_ttl_s": self.spec.lease_ttl_s,
            "heartbeat_s": self.spec.heartbeat_s,
        }

        def spawn() -> _WorkerHandle:
            worker_id = f"w{next(worker_ids)}"
            task_q = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, task_q, result_q, plan, context),
                daemon=True)
            process.start()
            handle = _WorkerHandle(worker_id, process, task_q)
            handles[worker_id] = handle
            return handle

        try:
            for _ in range(n_workers):
                spawn()
        except OSError as exc:
            echo(f"[campaign] worker spawn failed ({exc}); "
                 "degrading to serial in-process execution")
            self.stats.serial_fallback = True
            self._shutdown(handles, result_q, echo)
            return self._run_serial(stop_flag, stop_after, echo)

        completed_this_run = 0
        interrupted = False
        while True:
            if stop_flag["stop"]:
                echo("[campaign] interrupt: flushing queue and ledger")
                interrupted = True
                break
            if stop_after is not None and completed_this_run >= stop_after:
                echo(f"[campaign] stopping after {completed_this_run} "
                     "cell(s) as requested")
                interrupted = True
                break
            if self.queue.finished():
                break
            now = time.time()
            for cell in self.queue.expired(now):
                self.stats.expirations += 1
                echo(f"[campaign] lease expired: cell {cell.index} "
                     f"({cell.workload}/{cell.prefetcher}) "
                     f"on {cell.worker}")
                handle = handles.pop(cell.worker or "", None)
                if handle is not None:
                    self._kill(handle)
                self._fail_cell(cell, "lease expired", now, echo)
            for handle in list(handles.values()):
                if handle.process.is_alive():
                    continue
                handles.pop(handle.worker_id, None)
                self.stats.worker_crashes += 1
                exitcode = handle.process.exitcode
                echo(f"[campaign] worker {handle.worker_id} died "
                     f"(exit {exitcode})")
                if handle.busy is not None:
                    cell = self.queue.cells[handle.busy]
                    if cell.state == LEASED \
                            and cell.worker == handle.worker_id:
                        self._fail_cell(
                            cell, f"worker crashed (exit {exitcode})",
                            now, echo)
            while len(handles) < n_workers:
                try:
                    spawn()
                except OSError as exc:
                    echo(f"[campaign] worker respawn failed ({exc}); "
                         "degrading to serial in-process execution")
                    self.stats.serial_fallback = True
                    self._shutdown(handles, result_q, echo)
                    return self._run_serial(stop_flag, stop_after, echo)
            for handle in handles.values():
                if handle.busy is not None:
                    continue
                cell = self.queue.claim(now)
                if cell is None:
                    break
                self.queue.lease(cell.key, handle.worker_id,
                                 self.spec.lease_ttl_s, now)
                self.stats.leases += 1
                handle.busy = cell.key
                handle.task_q.put((cell.key, cell.index, cell.workload,
                                   cell.prefetcher, cell.seed,
                                   cell.attempts))
            drained_one = False
            while True:
                try:
                    message = result_q.get(
                        timeout=0.0 if drained_one else 0.05)
                except queue_mod.Empty:
                    break
                drained_one = True
                if self._handle_message(message, handles, echo):
                    completed_this_run += 1
            if self._series is not None:
                self._series.sample(self.queue, self.stats)
        self._shutdown(handles, result_q, echo)
        return interrupted

    def _handle_message(self, message, handles: Dict[str, _WorkerHandle],
                        echo: Callable[[str], None]) -> bool:
        """Apply one worker message; True when it completed a cell."""
        kind, worker_id, key = message[0], message[1], message[2]
        cell = self.queue.cells.get(key)
        if cell is None:
            return False
        stale = cell.state != LEASED or cell.worker != worker_id
        if kind == "heartbeat":
            if not stale:
                self.queue.heartbeat(key, worker_id, self.spec.lease_ttl_s)
            return False
        handle = handles.get(worker_id)
        if handle is not None and handle.busy == key:
            handle.busy = None
        if stale:
            return False  # lease was reclaimed; a retry owns this cell now
        if kind == "done":
            self._record_row(cell, message[3], worker_id)
            self.queue.complete(key, worker_id)
            self.stats.completed += 1
            if self._series is not None:
                self._series.note_done(worker_id)
            echo(f"[campaign] cell {cell.index} done "
                 f"({cell.workload}/{cell.prefetcher} seed {cell.seed}) "
                 f"on {worker_id}")
            return True
        if kind == "fail":
            self._fail_cell(cell, str(message[3]), time.time(), echo)
        return False

    def _fail_cell(self, cell: CellState, error: str, now: float,
                   echo: Callable[[str], None]) -> None:
        worker = cell.worker
        attempts = cell.attempts + 1
        if attempts >= self.spec.max_attempts:
            self.queue.fail(cell.key, error, not_before=now)
            self.queue.quarantine(cell.key, error)
            self.ledger.record_cell(
                cell=f"{cell.index:03d}:{cell.workload}:{cell.prefetcher}",
                key=cell.key, seed=cell.seed, workload=cell.workload,
                prefetcher=cell.prefetcher, metrics=dict(_ZERO_METRICS),
                outcome="quarantined", attempts=attempts,
                error=error, worker=worker)
            self.stats.quarantined += 1
            echo(f"[campaign] cell {cell.index} quarantined after "
                 f"{attempts} attempt(s): {error}")
        else:
            delay = retry_delay(cell.key, attempts, self.spec.backoff_s,
                                self.spec.backoff_factor)
            self.queue.fail(cell.key, error, not_before=now + delay)
            self.stats.retries += 1
            echo(f"[campaign] cell {cell.index} failed ({error}); "
                 f"retry {attempts}/{self.spec.max_attempts - 1} "
                 f"in {delay:.2f}s")

    def _record_row(self, cell: CellState, row, worker_id: str) -> None:
        self.ledger.record_cell(
            cell=f"{cell.index:03d}:{cell.workload}:{cell.prefetcher}",
            key=cell.key, seed=cell.seed, workload=cell.workload,
            prefetcher=cell.prefetcher,
            metrics=_row_metrics(row), timings=row.timings,
            outcome="ok" if cell.attempts == 0 else "retried",
            attempts=cell.attempts + 1,
            engine_used=row.extras.get("engine_used"),
            worker=worker_id)

    def _kill(self, handle: _WorkerHandle) -> None:
        process = handle.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)

    def _shutdown(self, handles: Dict[str, _WorkerHandle], result_q,
                  echo: Callable[[str], None]) -> None:
        for handle in handles.values():
            try:
                handle.task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.time() + 1.0
        for handle in handles.values():
            handle.process.join(timeout=max(0.0, deadline - time.time()))
            self._kill(handle)
        # Rows completed before the stop still count: drain what the
        # workers managed to send, then release whatever is left.
        while True:
            try:
                message = result_q.get(timeout=0.1)
            except queue_mod.Empty:
                break
            self._handle_message(message, handles, echo)
        handles.clear()
        for cell in self.queue.leased():
            self.queue.release(cell.key)

    def _run_serial(self, stop_flag: Dict[str, bool],
                    stop_after: Optional[int],
                    echo: Callable[[str], None]) -> bool:
        """In-process execution through the same queue transitions.

        Used for ``workers: 0`` specs and as the degradation path when
        worker processes cannot be spawned.  Campaign worker faults
        (crash/lease-expiry) are inert here — they only fire in child
        processes — but cell-level faults still apply, exactly like the
        grid supervisor's serial fallback.
        """
        evaluations: Dict[int, object] = {}
        context = {"loads": self.spec.loads, "budget": self.spec.budget,
                   "engine": self.spec.engine}
        completed_this_run = 0
        while True:
            if stop_flag["stop"]:
                echo("[campaign] interrupt: flushing queue and ledger")
                return True
            if stop_after is not None and completed_this_run >= stop_after:
                echo(f"[campaign] stopping after {completed_this_run} "
                     "cell(s) as requested")
                return True
            if self.queue.finished():
                return False
            now = time.time()
            cell = self.queue.claim(now)
            if cell is None:
                wake = self.queue.next_not_before()
                time.sleep(min(0.05, max(0.0, (wake or now) - now)) or 0.01)
                continue
            self.queue.lease(cell.key, "serial",
                             max(self.spec.lease_ttl_s, 3600.0), now)
            self.stats.leases += 1
            try:
                row = execute_cell(evaluations, context, cell.workload,
                                   cell.prefetcher, cell.seed)
            except Exception as exc:  # noqa: BLE001 - quarantine path
                self._fail_cell(cell, f"{type(exc).__name__}: {exc}",
                                time.time(), echo)
                if self._series is not None:
                    self._series.sample(self.queue, self.stats)
                continue
            self._record_row(cell, row, "serial")
            self.queue.complete(cell.key, "serial")
            self.stats.completed += 1
            completed_this_run += 1
            if self._series is not None:
                self._series.note_done("serial")
                self._series.sample(self.queue, self.stats)
            echo(f"[campaign] cell {cell.index} done "
                 f"({cell.workload}/{cell.prefetcher} seed {cell.seed}) "
                 f"serially")


def _row_metrics(row) -> Dict[str, object]:
    from ..harness.runner import eval_row_metrics

    return eval_row_metrics(row)


def campaign_summary(directory: Union[str, Path]) -> Dict[str, object]:
    """A read-only snapshot of a campaign directory for status/report.

    Safe to call mid-campaign: both JSONL readers tolerate in-flight
    appends, and nothing here writes.
    """
    directory = Path(directory)
    meta = Campaign.read_meta(directory)
    queue = WorkQueue.open(directory / QUEUE_FILE, meta["cells"])
    events = read_queue_events(directory / QUEUE_FILE)
    per_worker: Dict[str, int] = {}
    retries = 0
    expirations = 0
    for event in events:
        kind = event.get("kind")
        if kind == "done":
            worker = str(event.get("worker", "?"))
            if worker != "reconcile":
                per_worker[worker] = per_worker.get(worker, 0) + 1
        elif kind == "fail":
            retries += 1
            if "lease expired" in str(event.get("error", "")):
                expirations += 1
    ledger_cells = 0
    finish = None
    ledger_path = directory / LEDGER_FILE
    if ledger_path.exists():
        from ..obs.ledger import read_ledger

        parsed = read_ledger(ledger_path)
        ledger_cells = len({str(record.get("key"))
                            for record in parsed["cells"]})
        finish = parsed["finish"]
    series_samples: List[Dict[str, object]] = []
    series_path = directory / SERIES_FILE
    if series_path.exists():
        from ..obs.timeseries import read_campaign_series

        series_samples = read_campaign_series(series_path)
    return {
        "name": meta["spec"].get("name", "?"),
        "run_id": meta.get("run_id"),
        "created_utc": meta.get("created_utc"),
        "fault_spec": meta.get("fault_spec"),
        "cells": len(meta["cells"]),
        "counts": queue.counts(),
        "finished": queue.finished(),
        "quarantined": [
            {"index": cell.index, "workload": cell.workload,
             "prefetcher": cell.prefetcher, "seed": cell.seed,
             "attempts": cell.attempts, "error": cell.error}
            for cell in queue.quarantined()],
        "per_worker": dict(sorted(per_worker.items())),
        "retries": retries,
        "expirations": expirations,
        "torn_events": queue.torn_events,
        "events": events,
        "ledger_cells": ledger_cells,
        "finish": finish,
        "series_samples": series_samples,
    }
