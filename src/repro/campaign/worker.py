"""Campaign worker processes: lease cells, heartbeat, stream rows back.

A worker is a long-lived ``multiprocessing.Process`` fed one task at a
time through its private inbox queue; it answers on the shared result
queue with::

    ("heartbeat", worker_id, key)
    ("done",      worker_id, key, EvalRow)
    ("fail",      worker_id, key, "ExcType: message")

While a cell runs, a daemon thread heartbeats every
``heartbeat_s`` so the supervisor keeps extending the lease; a worker
that dies (or is silenced by the ``campaign.lease_expire`` fault)
stops heartbeating and the supervisor reclaims the cell at TTL expiry.

Cell execution reuses :class:`~repro.harness.runner.Evaluation` — one
cached instance per seed, so a worker that runs several cells of the
same (workload, seed) generates the trace and baseline once, exactly
like the in-process grid.  The parent's
:class:`~repro.resilience.faults.FaultPlan` is re-armed on entry, so
armed faults (and the batch→fast engine downgrade they imply) behave
identically in a leased cell and an in-process run.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Dict, Optional

from ..resilience import faults


def _campaign_faults(attempt: int, index: int,
                     lease_ttl_s: float) -> Optional[float]:
    """Fire the campaign worker fault points, if armed.

    Returns a sleep duration when ``campaign.lease_expire`` fires (the
    caller must suppress heartbeats and sleep past the TTL), ``None``
    otherwise.  Like the grid's ``worker.crash``, these points only
    fire inside a child process: the supervisor's serial fallback runs
    the same body in-parent, where crashing would defeat the
    degradation under test.
    """
    if multiprocessing.parent_process() is None:
        return None
    if faults.fires("campaign.worker_crash", attempt=attempt, index=index):
        os._exit(13)
    site = faults.fires("campaign.lease_expire", attempt=attempt,
                        index=index)
    if site is None:
        return None
    return (site.seconds if "seconds" in site.params
            else lease_ttl_s * 1.5)


def execute_cell(evaluations: Dict[int, object], context: Dict[str, object],
                 workload: str, prefetcher: str, seed: int):
    """Run one campaign cell, reusing per-seed Evaluation caches."""
    from ..harness.runner import Evaluation

    evaluation = evaluations.get(seed)
    if evaluation is None:
        evaluation = Evaluation(
            n_accesses=int(context["loads"]), seed=seed,
            budget=int(context["budget"]), engine=str(context["engine"]))
        evaluations[seed] = evaluation
    return evaluation.run(workload, prefetcher)


def _heartbeat_loop(result_q, worker_id: str, key: str, interval_s: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            result_q.put(("heartbeat", worker_id, key))
        except (OSError, ValueError):
            return  # supervisor gone; the process is about to be reaped


def worker_main(worker_id: str, task_q, result_q,
                plan: Optional[faults.FaultPlan],
                context: Dict[str, object]) -> None:
    """Entry point of one campaign worker process."""
    if plan is not None:
        faults.arm(plan)
    lease_ttl_s = float(context["lease_ttl_s"])
    heartbeat_s = float(context["heartbeat_s"])
    evaluations: Dict[int, object] = {}
    while True:
        task = task_q.get()
        if task is None:
            return
        key, index, workload, prefetcher, seed, attempt = task
        stop = threading.Event()
        beat: Optional[threading.Thread] = None
        try:
            oversleep = _campaign_faults(attempt, index, lease_ttl_s)
            if oversleep is not None:
                # Hung worker: no heartbeats, outlive the lease.  The
                # supervisor reclaims the cell and kills this process;
                # the sleep just keeps us convincingly unresponsive.
                time.sleep(oversleep)
            else:
                beat = threading.Thread(
                    target=_heartbeat_loop,
                    args=(result_q, worker_id, key, heartbeat_s, stop),
                    daemon=True)
                beat.start()
            row = execute_cell(evaluations, context,
                               workload, prefetcher, seed)
            stop.set()
            result_q.put(("done", worker_id, key, row))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            stop.set()
            result_q.put(("fail", worker_id, key,
                          f"{type(exc).__name__}: {exc}"))
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=1.0)
