"""Trace-driven cache/CPU simulator (the ChampSim-fork substitute).

Reproduces the ML-DPC methodology used by the paper: a prefetcher first
converts a load trace into a *prefetch file* (trigger instruction id +
address), then the simulator replays the trace, injecting each prefetch
into the LLC when its trigger dispatches, and reports IPC plus the
prefetch bookkeeping needed for accuracy/coverage.

Components:

- :mod:`repro.sim.cache` — set-associative caches with LRU and
  per-line prefetch tracking.
- :mod:`repro.sim.dram` — banked DRAM with queue-occupancy delays.
- :mod:`repro.sim.cpu` — an MLP-aware in-order-retire timing model
  (dispatch width, ROB runahead limit, MSHR cap).
- :mod:`repro.sim.simulator` — the trace replay driver.
- :mod:`repro.sim.multicore` — shared-LLC/DRAM co-run mode.
- :mod:`repro.sim.metrics` — result container and derived metrics.
"""

from .cache import CacheConfig, SetAssociativeCache
from .multicore import MulticoreResult, MulticoreSimulator, simulate_multicore
from .dram import DramConfig, DramModel
from .cpu import CoreConfig
from .metrics import SimResult, accuracy, coverage
from .simulator import HierarchyConfig, Simulator, simulate

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "MulticoreResult",
    "MulticoreSimulator",
    "simulate_multicore",
    "DramConfig",
    "DramModel",
    "CoreConfig",
    "SimResult",
    "accuracy",
    "coverage",
    "HierarchyConfig",
    "Simulator",
    "simulate",
]
