"""Set-associative cache with pluggable replacement and prefetch tracking.

Lines remember whether they were brought in by a prefetch and not yet
referenced by a demand access; the first demand hit on such a line is
counted as a *useful* prefetch, matching ChampSim's accounting.

Replacement is per-set and pluggable (``lru`` default, ``srrip``
optional — see :mod:`repro.sim.replacement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from .replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    Attributes:
        name: Level name for reporting ("L1D", "L2", "LLC").
        sets: Number of sets (must be a power of two).
        ways: Associativity.
        latency: Access latency in core cycles.
        replacement: Per-set policy, ``"lru"`` or ``"srrip"``.
    """

    name: str
    sets: int
    ways: int
    latency: int
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.sets <= 0 or (self.sets & (self.sets - 1)) != 0:
            raise ConfigError(f"{self.name}: sets must be a positive power of two")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if self.latency < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")
        if self.replacement not in ("lru", "srrip"):
            raise ConfigError(
                f"{self.name}: unknown replacement {self.replacement!r}")

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks the cache holds."""
        return self.sets * self.ways


class _Line:
    """Payload state of one resident block."""

    __slots__ = ("prefetched",)

    def __init__(self, prefetched: bool):
        self.prefetched = prefetched


class _CacheSet:
    """One set: tag→line storage plus its replacement policy."""

    __slots__ = ("lines", "policy")

    def __init__(self, policy: ReplacementPolicy):
        self.lines: Dict[int, _Line] = {}
        self.policy = policy


class SetAssociativeCache:
    """A set-associative cache over *block numbers*.

    The cache is indexed by block number (byte address >> 6); tags are
    the remaining high bits.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._index_mask = config.sets - 1
        self._tag_shift_bits = config.sets.bit_length() - 1
        self._sets: Dict[int, _CacheSet] = {}
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.evicted_unused_prefetches = 0

    def _locate(self, block: int) -> Tuple[int, int]:
        return block & self._index_mask, block >> self._tag_shift_bits

    def _set_for(self, index: int) -> _CacheSet:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = _CacheSet(make_policy(self.config.replacement))
            self._sets[index] = cache_set
        return cache_set

    def lookup(self, block: int, update: bool = True) -> bool:
        """Demand-probe the cache for ``block``.

        Returns True on hit.  On a hit to a line installed by a prefetch
        that has not yet been demanded, the line is reclassified as a
        demand line and :attr:`useful_prefetches` is incremented.
        """
        index, tag = self._locate(block)
        cache_set = self._sets.get(index)
        if cache_set is None or tag not in cache_set.lines:
            if update:
                self.misses += 1
            return False
        if update:
            self.hits += 1
            line = cache_set.lines[tag]
            if line.prefetched:
                line.prefetched = False
                self.useful_prefetches += 1
            cache_set.policy.on_hit(tag)
        return True

    def contains(self, block: int) -> bool:
        """Non-destructive presence check (no stats, no policy update)."""
        return self.lookup(block, update=False)

    def insert(self, block: int, prefetched: bool = False) -> Optional[int]:
        """Install ``block``; returns the evicted block number, if any.

        Re-inserting a resident block refreshes its replacement state; a
        demand re-insert clears any pending prefetch flag.
        """
        index, tag = self._locate(block)
        cache_set = self._set_for(index)
        if tag in cache_set.lines:
            if not prefetched:
                cache_set.lines[tag].prefetched = False
            cache_set.policy.on_hit(tag)
            return None
        victim_block: Optional[int] = None
        if len(cache_set.lines) >= self.config.ways:
            victim_tag = cache_set.policy.choose_victim()
            victim_line = cache_set.lines.pop(victim_tag)
            cache_set.policy.on_evict(victim_tag)
            victim_block = (victim_tag << self._tag_shift_bits) | index
            if victim_line.prefetched:
                self.evicted_unused_prefetches += 1
        cache_set.lines[tag] = _Line(prefetched=prefetched)
        cache_set.policy.on_insert(tag)
        if prefetched:
            self.prefetch_fills += 1
        return victim_block

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; returns whether it was resident."""
        index, tag = self._locate(block)
        cache_set = self._sets.get(index)
        if cache_set is None or tag not in cache_set.lines:
            return False
        del cache_set.lines[tag]
        cache_set.policy.on_evict(tag)
        return True

    def reset_stats(self) -> None:
        """Zero all counters without touching cache contents."""
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.evicted_unused_prefetches = 0

    @property
    def occupancy(self) -> int:
        """Number of blocks currently resident."""
        return sum(len(s.lines) for s in self._sets.values())
