"""Set-associative cache with pluggable replacement and prefetch tracking.

Lines remember whether they were brought in by a prefetch and not yet
referenced by a demand access; the first demand hit on such a line is
counted as a *useful* prefetch, matching ChampSim's accounting.

Replacement is per-set and pluggable (``lru`` default, ``srrip``
optional — see :mod:`repro.sim.replacement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from .replacement import ReplacementPolicy, make_policy


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    Attributes:
        name: Level name for reporting ("L1D", "L2", "LLC").
        sets: Number of sets (must be a power of two).
        ways: Associativity.
        latency: Access latency in core cycles.
        replacement: Per-set policy, ``"lru"`` or ``"srrip"``.
    """

    name: str
    sets: int
    ways: int
    latency: int
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.sets <= 0 or (self.sets & (self.sets - 1)) != 0:
            raise ConfigError(f"{self.name}: sets must be a positive power of two")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if self.latency < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")
        if self.replacement not in ("lru", "srrip"):
            raise ConfigError(
                f"{self.name}: unknown replacement {self.replacement!r}")

    @property
    def capacity_blocks(self) -> int:
        """Total number of blocks the cache holds."""
        return self.sets * self.ways


class _Line:
    """Payload state of one resident block."""

    __slots__ = ("prefetched",)

    def __init__(self, prefetched: bool):
        self.prefetched = prefetched


class _CacheSet:
    """One set: tag→line storage plus its replacement policy."""

    __slots__ = ("lines", "policy")

    def __init__(self, policy: ReplacementPolicy):
        self.lines: Dict[int, _Line] = {}
        self.policy = policy


class SetAssociativeCache:
    """A set-associative cache over *block numbers*.

    The cache is indexed by block number (byte address >> 6); tags are
    the remaining high bits.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._index_mask = config.sets - 1
        self._tag_shift_bits = config.sets.bit_length() - 1
        self._sets: Dict[int, _CacheSet] = {}
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.evicted_unused_prefetches = 0

    def _locate(self, block: int) -> Tuple[int, int]:
        return block & self._index_mask, block >> self._tag_shift_bits

    def _set_for(self, index: int) -> _CacheSet:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = _CacheSet(make_policy(self.config.replacement))
            self._sets[index] = cache_set
        return cache_set

    def lookup(self, block: int, update: bool = True) -> bool:
        """Demand-probe the cache for ``block``.

        Returns True on hit.  On a hit to a line installed by a prefetch
        that has not yet been demanded, the line is reclassified as a
        demand line and :attr:`useful_prefetches` is incremented.
        """
        index, tag = self._locate(block)
        cache_set = self._sets.get(index)
        if cache_set is None or tag not in cache_set.lines:
            if update:
                self.misses += 1
            return False
        if update:
            self.hits += 1
            line = cache_set.lines[tag]
            if line.prefetched:
                line.prefetched = False
                self.useful_prefetches += 1
            cache_set.policy.on_hit(tag)
        return True

    def contains(self, block: int) -> bool:
        """Non-destructive presence check (no stats, no policy update)."""
        return self.lookup(block, update=False)

    def insert(self, block: int, prefetched: bool = False) -> Optional[int]:
        """Install ``block``; returns the evicted block number, if any.

        Re-inserting a resident block refreshes its replacement state; a
        demand re-insert clears any pending prefetch flag.
        """
        index, tag = self._locate(block)
        cache_set = self._set_for(index)
        if tag in cache_set.lines:
            if not prefetched:
                cache_set.lines[tag].prefetched = False
            cache_set.policy.on_hit(tag)
            return None
        victim_block: Optional[int] = None
        if len(cache_set.lines) >= self.config.ways:
            victim_tag = cache_set.policy.choose_victim()
            victim_line = cache_set.lines.pop(victim_tag)
            cache_set.policy.on_evict(victim_tag)
            victim_block = (victim_tag << self._tag_shift_bits) | index
            if victim_line.prefetched:
                self.evicted_unused_prefetches += 1
        cache_set.lines[tag] = _Line(prefetched=prefetched)
        cache_set.policy.on_insert(tag)
        if prefetched:
            self.prefetch_fills += 1
        return victim_block

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; returns whether it was resident."""
        index, tag = self._locate(block)
        cache_set = self._sets.get(index)
        if cache_set is None or tag not in cache_set.lines:
            return False
        del cache_set.lines[tag]
        cache_set.policy.on_evict(tag)
        return True

    def reset_stats(self) -> None:
        """Zero all counters without touching cache contents."""
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.evicted_unused_prefetches = 0

    @property
    def occupancy(self) -> int:
        """Number of blocks currently resident."""
        return sum(len(s.lines) for s in self._sets.values())


class ArrayCache:
    """Array-of-sets LRU cache — the fast replay engine's levels.

    Semantically identical to :class:`SetAssociativeCache` with ``lru``
    replacement (same hit/miss/useful/evicted accounting, same victim
    choice), but all line state lives in one preallocated flat array of
    per-set dicts: ``sets[block & mask]`` maps each resident block to
    its prefetched-and-not-yet-demanded bit, in LRU order (least
    recently touched first).

    CPython dicts preserve insertion order, so the whole LRU protocol
    is three O(1) C-level operations with no per-line objects, no
    policy indirection, and no way scans:

    - *touch* — ``del d[block]; d[block] = bit`` re-appends the key;
    - *insert* — ``d[block] = bit``;
    - *evict* — ``next(iter(d))`` is the least-recently-used block.

    (A flat stamp/tag/pf-bit array layout with ``min``-scan victim
    selection was prototyped first and measured 2–5x slower here: in
    CPython the O(ways) victim scan per insert costs far more than the
    dict's ordered-eviction bookkeeping, which runs entirely in C.
    Flat numpy columns still back the *trace* side — see
    :class:`repro.types.TraceArrays`.)

    The replay fast path (:mod:`repro.sim.fast_engine`) hoists ``sets``
    into loop locals and inlines these operations; the methods here
    serve setup, tests, and any colder caller.

    Only ``lru`` replacement is supported — the simulator falls back to
    the reference engine for ``srrip`` configs.
    """

    __slots__ = ("config", "_index_mask", "_ways", "sets", "hits",
                 "misses", "prefetch_fills", "useful_prefetches",
                 "evicted_unused_prefetches")

    def __init__(self, config: CacheConfig):
        if config.replacement != "lru":
            raise ConfigError(
                f"{config.name}: ArrayCache supports only lru replacement "
                f"(got {config.replacement!r})")
        self.config = config
        self._index_mask = config.sets - 1
        self._ways = config.ways
        #: Per-set LRU state: block → pf bit, least recently used first.
        self.sets: list = [{} for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.evicted_unused_prefetches = 0

    def lookup(self, block: int, update: bool = True) -> bool:
        """Demand-probe for ``block``; same contract as the reference."""
        lines = self.sets[block & self._index_mask]
        if block not in lines:
            if update:
                self.misses += 1
            return False
        if update:
            self.hits += 1
            if lines[block]:
                self.useful_prefetches += 1
            del lines[block]
            lines[block] = 0
        return True

    def contains(self, block: int) -> bool:
        """Non-destructive presence check (no stats, no LRU update)."""
        return block in self.sets[block & self._index_mask]

    def insert(self, block: int, prefetched: bool = False) -> Optional[int]:
        """Install ``block``; returns the evicted block number, if any."""
        lines = self.sets[block & self._index_mask]
        if block in lines:
            # Refresh LRU position; a demand re-insert clears the pf
            # bit, a prefetched re-insert leaves it as-is.
            bit = lines[block] if prefetched else 0
            del lines[block]
            lines[block] = bit
            return None
        victim_block: Optional[int] = None
        lines[block] = 1 if prefetched else 0
        if len(lines) > self._ways:
            victim_block = next(iter(lines))
            if lines.pop(victim_block):
                self.evicted_unused_prefetches += 1
        if prefetched:
            self.prefetch_fills += 1
        return victim_block

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; returns whether it was resident."""
        return self.sets[block & self._index_mask].pop(block, None) is not None

    def reset_stats(self) -> None:
        """Zero all counters without touching cache contents."""
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0
        self.evicted_unused_prefetches = 0

    @property
    def occupancy(self) -> int:
        """Number of blocks currently resident."""
        return sum(len(lines) for lines in self.sets)
