"""The ``engine="batch"`` replay driver.

Plans the replay from the trace's cached columns
(:func:`~repro.sim.fast_engine.planner.plan_replay`), then executes it
on the compiled C kernel (:mod:`~repro.sim.fast_engine.ckernel`) when
the plan is eligible, or on the fused scalar loop
(:func:`~repro.sim.fast_engine.scalar.replay_fast`) when it is not —
non-monotone instruction ids, negative blocks, oversized ids, warm
caches, pre-existing prefetch state, or simply no C compiler.  Both
paths produce bit-identical :class:`~repro.sim.metrics.SimResult`\\ s;
the parity suite runs all three engines against each other.

The cross-lineup amortization lives one level down: the planner reads
the monotone flag and derived columns cached on
:class:`repro.types.TraceArrays`, so a grid/bench lineup (baseline +
N prefetchers × repeats over one trace) derives them once.
"""

from __future__ import annotations

from typing import Dict, List

from ..metrics import SimResult
from ...types import Trace
from .ckernel import load_kernel
from .planner import plan_replay
from .scalar import replay_fast
from .windowed import feed_kernel_series, replay_windowed


def _load_replay_kernel():
    """Seam for tests: the compiled kernel, or ``None``."""
    return load_kernel()


def replay_batch(sim, trace: Trace,
                 by_trigger: Dict[int, List[int]],
                 result: SimResult, recorder=None) -> None:
    """Replay ``trace`` on ``sim`` using the batch plan.

    Same contract as :func:`replay_fast`: mutates ``result`` and the
    simulator's cache/DRAM stats in place; the caller owns the shared
    epilogue.  With a :class:`~repro.obs.timeseries.WindowRecorder`
    armed, the kernel emits one cumulative-counter row per window (the
    fallback path runs the window-tiled scalar loop instead) — pure
    observation either way, results stay bit-identical.
    """
    arrays = trace.arrays()
    plan = plan_replay(arrays, by_trigger)
    kernel = _load_replay_kernel()
    cold = (not any(sim.l1d.sets) and not any(sim.l2.sets)
            and not any(sim.llc.sets))
    if (kernel is None or not plan.kernel_eligible or not cold
            or sim._pf_heap or sim._pf_inflight):
        if recorder is not None:
            replay_windowed(sim, trace, by_trigger, result, recorder)
        else:
            replay_fast(sim, trace, by_trigger, result)
        return

    series_window = recorder.window if recorder is not None else 0
    out = kernel.replay(arrays.instr_ids, arrays.blocks,
                        plan.pf_starts, plan.pf_blocks, sim.config,
                        series_window=series_window)
    if recorder is not None:
        feed_kernel_series(recorder, out["series"], len(arrays),
                           series_window)

    # -- write the kernel's counters back (same targets as the scalar
    # loop's epilogue) ---------------------------------------------------
    l1, l2, llc, dram = sim.l1d, sim.l2, sim.llc, sim.dram
    l1.hits, l1.misses = out["l1_hits"], out["l1_misses"]
    l2.hits, l2.misses = out["l2_hits"], out["l2_misses"]
    llc.hits, llc.misses = out["llc_hits"], out["llc_misses"]
    llc.useful_prefetches = out["llc_useful"]
    llc.evicted_unused_prefetches = out["llc_evicted_unused"]
    llc.prefetch_fills = out["llc_pf_fills"]
    dram.requests = out["dram_requests"]
    dram.total_wait_cycles = out["dram_wait"]
    wait_hist = dram.wait_histogram
    if wait_hist is not None:
        observe = wait_hist.observe
        for wait in out["waits"].tolist():
            observe(wait)
    if out["pf_dropped"]:
        sim._pf_dropped.inc(out["pf_dropped"])

    result.l1d_hits = out["l1_hits"]
    result.l2_hits = out["l2_hits"]
    result.llc_hits = out["llc_hits"]
    result.llc_misses = out["llc_misses"]
    result.pf_issued = out["pf_issued"]
    result.pf_late = out["pf_late"]
    # Late prefetches count as useful here, exactly as in the scalar
    # and reference loops; the caller's epilogue adds the LLC's
    # in-cache useful count.
    result.pf_useful = out["pf_late"]

    # ---- core.finalize -------------------------------------------------
    cycles = trace.instruction_count / sim.config.core.width
    for cursor in (out["dispatch"], out["commit"], out["drain"]):
        if cursor > cycles:
            cycles = cursor
    result.cycles = cycles
