"""The simulator's fast replay loop: one function, all state in locals.

:class:`~repro.sim.simulator.Simulator` dispatches here for
``engine="fast"`` runs.  The reference loop spends most of its time on
interpreter plumbing — attribute lookups, method calls through the
cache/policy/core/DRAM layers, per-line and per-access objects — rather
than on the model itself (~1.5M function calls for a 20K-load replay).
This module removes that plumbing while keeping the arithmetic
*literally identical*, so the returned
:class:`~repro.sim.metrics.SimResult` is bit-for-bit the reference
engine's:

- the trace is consumed through its struct-of-arrays view
  (:meth:`repro.types.Trace.arrays`) instead of per-access objects;
- the three cache levels are :class:`~repro.sim.cache.ArrayCache`
  instances whose per-set LRU dicts are hoisted into loop locals and
  manipulated inline (touch/insert/evict are each O(1) C dict ops);
- DRAM is the :class:`~repro.sim.dram.FlatDram` kernel (flat bank-free
  list + completion min-heap), inlined;
- the timing core's dispatch/ROB/MSHR/commit bookkeeping is inlined
  with the same float expressions, in the same order, as
  :class:`~repro.sim.cpu.TimingCore` (order matters: ``dispatch +
  (completion - dispatch)`` is *not* ``completion`` in floats, and the
  reference's rounding is the contract);
- observability checks are hoisted out of the loop: the engine is only
  selected when event tracing is off, and the optional DRAM wait
  histogram costs one ``is None`` test per DRAM request.

Cycle arithmetic is integer wherever the reference's is (all DRAM and
prefetch-completion times); only the core's dispatch/commit cursors are
floats, because the reference defines them that way.

The loop is deliberately one long function: every helper call it avoids
is the point.  Parity with the reference engine is enforced by
``tests/test_replay_parity.py`` across every registered prefetcher.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import repeat
from typing import Dict, List

import numpy as np

from ..metrics import SimResult
from ...types import Trace


def replay_fast(sim, trace: Trace,
                by_trigger: Dict[int, List[int]],
                result: SimResult) -> None:
    """Replay ``trace`` on ``sim``'s fast-engine state.

    Mutates ``result`` (counters and cycles) and the simulator's
    cache/DRAM stats in place; the caller owns the shared epilogue
    (useful-prefetch accounting, metrics publication).
    """
    cfg = sim.config
    core_cfg = cfg.core
    width = core_cfg.width
    rob_size = core_cfg.rob_size
    mshr_cap = core_cfg.mshrs

    l1_lat = cfg.l1d.latency
    l2_lat = l1_lat + cfg.l2.latency
    llc_lat = l2_lat + cfg.llc.latency

    # -- cache state, hoisted (see ArrayCache for the layout: each set
    # is a block → pf-bit dict in LRU order, least recent first) --------
    l1, l2, llc = sim.l1d, sim.l2, sim.llc
    l1_sets = l1.sets
    l1_mask = cfg.l1d.sets - 1
    l1_ways = cfg.l1d.ways
    l1_hits = l1_misses = 0

    l2_sets = l2.sets
    l2_mask = cfg.l2.sets - 1
    l2_ways = cfg.l2.ways
    l2_hits = l2_misses = 0

    llc_sets = llc.sets
    llc_mask = cfg.llc.sets - 1
    llc_ways = cfg.llc.ways
    llc_hits = llc_misses = 0
    llc_useful = llc_evicted_unused = llc_pf_fills = 0

    # -- DRAM state (FlatDram kernel, inlined) ---------------------------
    dram = sim.dram
    dram_cfg = dram.config
    n_banks = dram_cfg.total_banks
    base_latency = dram_cfg.base_latency
    bank_occupancy = dram_cfg.bank_occupancy
    queue_size = dram_cfg.read_queue_size
    bank_free = dram.bank_free
    dram_q = dram.inflight
    dram_requests = 0
    dram_wait = 0
    wait_hist = dram.wait_histogram
    wait_observe = wait_hist.observe if wait_hist is not None else None

    # -- timing-core state (TimingCore, inlined) -------------------------
    dispatch = 0.0
    commit = 0.0
    last_instr_id = 0
    window = deque()   # (instr_id, completion) inside the ROB window
    window_append = window.append
    window_popleft = window.popleft
    mshr: List[int] = []  # outstanding DRAM-miss completions (min-heap)

    # -- prefetch bookkeeping --------------------------------------------
    pf_heap = sim._pf_heap
    pf_inflight: Dict[int, int] = sim._pf_inflight
    pf_inflight_pop = pf_inflight.pop
    pf_issued = pf_late = pf_dropped = 0
    trigger_get = by_trigger.get

    arrays = trace.arrays()
    ids_np = arrays.instr_ids
    n = len(ids_np)
    instr_ids_l = arrays.instr_id_list()
    blocks_l = arrays.block_list()

    # -- chunked precomputation (one vectorized pass per column) ---------
    #
    # The per-access work that does not depend on replay timing is
    # lifted out of the loop, and the loop itself is specialized per
    # replay kind: prefetching replays get a precomputed trigger
    # alignment, prefetch-free replays get the assured-miss
    # classification and shed every prefetch check.  Prefetch *timing*
    # (when a fill drains, late-prefetch matches) stays sequential —
    # that is the cross-access dependency the classification is
    # explicitly constructed to be independent of.  Set indices, bank
    # numbers, and dispatch gaps stay scalar: hits never need the
    # deeper-level values, so precomputing them for every access (and
    # widening the zip) costs more than it saves.

    if by_trigger or pf_inflight or pf_heap:
        # ---- prefetching replay ----------------------------------------
        # Trigger alignment: one searchsorted replaces a dict probe per
        # access.  Triggers not present in the trace are silently
        # ignored, exactly like the ``by_trigger.get`` they replace.
        if n and arrays.monotone():
            pf_lists: List = [None] * n
            keys = np.fromiter(by_trigger.keys(), dtype=np.int64,
                               count=len(by_trigger))
            pos = np.minimum(np.searchsorted(ids_np, keys),
                             np.int64(n - 1))
            hit = (ids_np[pos] == keys).tolist()
            for key, p, ok in zip(keys.tolist(), pos.tolist(), hit):
                if ok:
                    pf_lists[p] = by_trigger[key]
        else:
            # Non-monotone instruction ids: duplicate ids must each
            # re-issue their trigger list, as the scalar probe did.
            pf_lists = list(map(trigger_get, instr_ids_l))

        for instr_id, block, pf_blocks in zip(instr_ids_l, blocks_l,
                                              pf_lists):
            # ---- core.dispatch_load ------------------------------------
            gap = instr_id - last_instr_id
            last_instr_id = instr_id
            if gap > 0:
                dispatch += gap / width
            while window:
                oldest = window[0]
                if instr_id - oldest[0] < rob_size:
                    break
                done = oldest[1]
                if done > dispatch:
                    dispatch = done
                window_popleft()

            # ---- drain completed prefetches into the LLC ---------------
            while pf_heap and pf_heap[0][0] <= dispatch:
                fill_block = heappop(pf_heap)[1]
                if pf_inflight_pop(fill_block, None) is None:
                    continue  # superseded (demand fetched it first)
                lines = llc_sets[fill_block & llc_mask]
                bit = lines.pop(fill_block, None)
                if bit is not None:
                    lines[fill_block] = bit  # resident: refresh, keep bit
                    continue
                lines[fill_block] = 1
                llc_pf_fills += 1
                if len(lines) > llc_ways:
                    victim = next(iter(lines))
                    if lines.pop(victim):
                        llc_evicted_unused += 1

            # ---- demand access through the hierarchy -------------------
            lines = l1_sets[block & l1_mask]
            if block in lines:
                # L1D hit (L1/L2 lines are demand-installed, never
                # carry a prefetch bit, so no useful-prefetch check is
                # needed).
                l1_hits += 1
                del lines[block]
                lines[block] = 0
                done = dispatch + l1_lat
            else:
                l1_misses += 1
                l2_lines = l2_sets[block & l2_mask]
                if block in l2_lines:
                    # L2 hit: refresh L2, fill L1.
                    l2_hits += 1
                    del l2_lines[block]
                    l2_lines[block] = 0
                    done = dispatch + l2_lat
                else:
                    l2_misses += 1
                    llc_lines = llc_sets[block & llc_mask]
                    bit = llc_lines.pop(block, None)
                    if bit is not None:
                        # LLC hit; a first demand touch of a prefetched
                        # line counts it useful.
                        llc_hits += 1
                        if bit:
                            llc_useful += 1
                        llc_lines[block] = 0
                        done = dispatch + llc_lat
                    else:
                        # LLC miss: late-prefetch match or a DRAM round
                        # trip.
                        llc_misses += 1
                        inflight_completion = pf_inflight_pop(block, None)
                        if inflight_completion is not None:
                            pf_late += 1
                            lookup_done = dispatch + llc_lat
                            completion = (inflight_completion
                                          if inflight_completion > lookup_done
                                          else lookup_done)
                        else:
                            issue = dispatch + llc_lat
                            # core.mshr_admit
                            while mshr and mshr[0] <= issue:
                                heappop(mshr)
                            if len(mshr) >= mshr_cap:
                                freed = heappop(mshr)
                                if freed > issue:
                                    issue = freed
                                while mshr and mshr[0] <= issue:
                                    heappop(mshr)
                            # dram.access at int(issue)
                            cycle = int(issue)
                            while dram_q and dram_q[0] <= cycle:
                                heappop(dram_q)
                            start = cycle
                            if len(dram_q) >= queue_size:
                                if dram_q[0] > start:
                                    start = dram_q[0]
                                while dram_q and dram_q[0] <= start:
                                    heappop(dram_q)
                            bank = block % n_banks
                            if bank_free[bank] > start:
                                start = bank_free[bank]
                            bank_free[bank] = start + bank_occupancy
                            completion = start + base_latency
                            heappush(dram_q, completion)
                            dram_requests += 1
                            dram_wait += start - cycle
                            if wait_observe is not None:
                                wait_observe(start - cycle)
                            heappush(mshr, completion)  # core.mshr_fill
                        # Demand-install in the LLC (it just missed, so
                        # this is always a fresh insert).
                        llc_lines[block] = 0
                        if len(llc_lines) > llc_ways:
                            victim = next(iter(llc_lines))
                            if llc_lines.pop(victim):
                                llc_evicted_unused += 1
                        # The reference computes the load's latency and
                        # adds it back to dispatch; replicate the float
                        # round trip rather than using `completion`
                        # directly.
                        done = dispatch + (completion - dispatch)

                    # L2 fill, shared by the LLC-hit and LLC-miss paths
                    # (the block missed L2 above, so this is a fresh
                    # insert).
                    l2_lines[block] = 0
                    if len(l2_lines) > l2_ways:
                        del l2_lines[next(iter(l2_lines))]

                # L1 fill, shared by every L1-miss path (fresh insert).
                lines[block] = 0
                if len(lines) > l1_ways:
                    del lines[next(iter(lines))]

            # ---- core.complete_load ------------------------------------
            window_append((instr_id, done))
            if done > commit:
                commit = done

            # ---- issue this trigger's prefetches -----------------------
            if pf_blocks is not None:
                for pf_block in pf_blocks:
                    if (pf_block in llc_sets[pf_block & llc_mask]
                            or pf_block in pf_inflight):
                        pf_dropped += 1
                        continue
                    # dram.access at int(dispatch)
                    cycle = int(dispatch)
                    while dram_q and dram_q[0] <= cycle:
                        heappop(dram_q)
                    start = cycle
                    if len(dram_q) >= queue_size:
                        if dram_q[0] > start:
                            start = dram_q[0]
                        while dram_q and dram_q[0] <= start:
                            heappop(dram_q)
                    bank = pf_block % n_banks
                    if bank_free[bank] > start:
                        start = bank_free[bank]
                    bank_free[bank] = start + bank_occupancy
                    completion = start + base_latency
                    heappush(dram_q, completion)
                    dram_requests += 1
                    dram_wait += start - cycle
                    if wait_observe is not None:
                        wait_observe(start - cycle)
                    pf_inflight[pf_block] = completion
                    heappush(pf_heap, (completion, pf_block))
                    pf_issued += 1
    else:
        # ---- prefetch-free replay (the no-prefetch IPC baseline) -------
        # No prefetch state exists and none can appear, so the loop
        # sheds the fill drain, the in-flight checks, and the issue
        # section outright — bit-identical by construction, since every
        # shed branch is unreachable when ``by_trigger`` is empty.
        #
        # Assured misses: on a cold start a first-touch block cannot be
        # resident in any level, no matter how replay timing unfolds —
        # classification for those accesses is settled set-level before
        # the loop runs (cached on the trace view, so a lineup derives
        # it once), and the assured path skips the residency probes
        # while keeping the miss arithmetic verbatim.
        assured_iter: "object" = repeat(False)
        if (not any(l1_sets) and not any(l2_sets)
                and not any(llc_sets)):
            assured_iter = arrays.first_touch_list()

        for instr_id, block, is_assured in zip(instr_ids_l, blocks_l,
                                               assured_iter):
            # ---- core.dispatch_load ------------------------------------
            gap = instr_id - last_instr_id
            last_instr_id = instr_id
            if gap > 0:
                dispatch += gap / width
            while window:
                oldest = window[0]
                if instr_id - oldest[0] < rob_size:
                    break
                done = oldest[1]
                if done > dispatch:
                    dispatch = done
                window_popleft()

            # ---- demand access through the hierarchy -------------------
            if is_assured:
                # Guaranteed cold miss at every level: residency probes
                # skipped, the LLC-miss DRAM path below is verbatim.
                l1_misses += 1
                l2_misses += 1
                llc_misses += 1
                issue = dispatch + llc_lat
                while mshr and mshr[0] <= issue:
                    heappop(mshr)
                if len(mshr) >= mshr_cap:
                    freed = heappop(mshr)
                    if freed > issue:
                        issue = freed
                    while mshr and mshr[0] <= issue:
                        heappop(mshr)
                cycle = int(issue)
                while dram_q and dram_q[0] <= cycle:
                    heappop(dram_q)
                start = cycle
                if len(dram_q) >= queue_size:
                    if dram_q[0] > start:
                        start = dram_q[0]
                    while dram_q and dram_q[0] <= start:
                        heappop(dram_q)
                bank = block % n_banks
                if bank_free[bank] > start:
                    start = bank_free[bank]
                bank_free[bank] = start + bank_occupancy
                completion = start + base_latency
                heappush(dram_q, completion)
                dram_requests += 1
                dram_wait += start - cycle
                if wait_observe is not None:
                    wait_observe(start - cycle)
                heappush(mshr, completion)
                llc_lines = llc_sets[block & llc_mask]
                llc_lines[block] = 0
                if len(llc_lines) > llc_ways:
                    victim = next(iter(llc_lines))
                    if llc_lines.pop(victim):
                        llc_evicted_unused += 1
                done = dispatch + (completion - dispatch)
                l2_lines = l2_sets[block & l2_mask]
                l2_lines[block] = 0
                if len(l2_lines) > l2_ways:
                    del l2_lines[next(iter(l2_lines))]
                lines = l1_sets[block & l1_mask]
                lines[block] = 0
                if len(lines) > l1_ways:
                    del lines[next(iter(lines))]
            else:
                lines = l1_sets[block & l1_mask]
                if block in lines:
                    # L1D hit.
                    l1_hits += 1
                    del lines[block]
                    lines[block] = 0
                    done = dispatch + l1_lat
                else:
                    l1_misses += 1
                    l2_lines = l2_sets[block & l2_mask]
                    if block in l2_lines:
                        # L2 hit: refresh L2, fill L1.
                        l2_hits += 1
                        del l2_lines[block]
                        l2_lines[block] = 0
                        done = dispatch + l2_lat
                    else:
                        l2_misses += 1
                        llc_lines = llc_sets[block & llc_mask]
                        bit = llc_lines.pop(block, None)
                        if bit is not None:
                            # LLC hit (pre-seeded caches may still
                            # carry prefetch bits).
                            llc_hits += 1
                            if bit:
                                llc_useful += 1
                            llc_lines[block] = 0
                            done = dispatch + llc_lat
                        else:
                            # LLC miss: a DRAM round trip (no prefetch
                            # can be in flight here).
                            llc_misses += 1
                            issue = dispatch + llc_lat
                            # core.mshr_admit
                            while mshr and mshr[0] <= issue:
                                heappop(mshr)
                            if len(mshr) >= mshr_cap:
                                freed = heappop(mshr)
                                if freed > issue:
                                    issue = freed
                                while mshr and mshr[0] <= issue:
                                    heappop(mshr)
                            # dram.access at int(issue)
                            cycle = int(issue)
                            while dram_q and dram_q[0] <= cycle:
                                heappop(dram_q)
                            start = cycle
                            if len(dram_q) >= queue_size:
                                if dram_q[0] > start:
                                    start = dram_q[0]
                                while dram_q and dram_q[0] <= start:
                                    heappop(dram_q)
                            bank = block % n_banks
                            if bank_free[bank] > start:
                                start = bank_free[bank]
                            bank_free[bank] = start + bank_occupancy
                            completion = start + base_latency
                            heappush(dram_q, completion)
                            dram_requests += 1
                            dram_wait += start - cycle
                            if wait_observe is not None:
                                wait_observe(start - cycle)
                            heappush(mshr, completion)  # core.mshr_fill
                            # Demand-install in the LLC.
                            llc_lines[block] = 0
                            if len(llc_lines) > llc_ways:
                                victim = next(iter(llc_lines))
                                if llc_lines.pop(victim):
                                    llc_evicted_unused += 1
                            # Same float round trip as the reference.
                            done = dispatch + (completion - dispatch)

                        # L2 fill, shared by the LLC-hit and LLC-miss
                        # paths (fresh insert).
                        l2_lines[block] = 0
                        if len(l2_lines) > l2_ways:
                            del l2_lines[next(iter(l2_lines))]

                    # L1 fill, shared by every L1-miss path.
                    lines[block] = 0
                    if len(lines) > l1_ways:
                        del lines[next(iter(lines))]

            # ---- core.complete_load ------------------------------------
            window_append((instr_id, done))
            if done > commit:
                commit = done

    # -- write the hoisted counters back ---------------------------------
    l1.hits, l1.misses = l1_hits, l1_misses
    l2.hits, l2.misses = l2_hits, l2_misses
    llc.hits, llc.misses = llc_hits, llc_misses
    llc.useful_prefetches = llc_useful
    llc.evicted_unused_prefetches = llc_evicted_unused
    llc.prefetch_fills = llc_pf_fills
    dram.requests = dram_requests
    dram.total_wait_cycles = dram_wait
    if pf_dropped:
        sim._pf_dropped.inc(pf_dropped)

    result.l1d_hits = l1_hits
    result.l2_hits = l2_hits
    result.llc_hits = llc_hits
    result.llc_misses = llc_misses
    result.pf_issued = pf_issued
    result.pf_late = pf_late
    # Late prefetches count as useful here, exactly as in the reference
    # loop; the caller's epilogue adds the LLC's in-cache useful count.
    result.pf_useful = pf_late

    # ---- core.finalize -------------------------------------------------
    drain = 0.0
    for entry in window:
        done = entry[1]
        if done > drain:
            drain = done
    cycles = trace.instruction_count / width
    if dispatch > cycles:
        cycles = dispatch
    if commit > cycles:
        cycles = commit
    if drain > cycles:
        cycles = drain
    result.cycles = cycles
