"""Window-tiled fused replay loop: the fast engine with ``--series`` on.

A transcription of :func:`repro.sim.fast_engine.scalar.replay_fast`'s
*generic prefetching loop* (which subsumes the prefetch-free loop — with
no prefetch state every prefetch branch is unreachable), tiled into
fixed access-index windows.  At each window boundary the hoisted
cumulative counters are written back once into a
:class:`~repro.obs.timeseries.WindowRecorder`; inside a window the loop
body is the scalar loop's, arithmetic for arithmetic, so the returned
:class:`~repro.sim.metrics.SimResult` stays bit-identical with the
series on or off (``tests/test_replay_parity.py`` pins this).

This is also where the batch engine lands when a recorder is armed but
the compiled kernel cannot run (no compiler, ineligible plan, warm
caches, pre-existing prefetch state): the kernel writes the same
cumulative rows itself (:data:`~repro.sim.fast_engine.ckernel.SERIES_FIELDS`),
and :func:`feed_kernel_series` replays them through the same recorder,
so all engines produce the same series for the same replay.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Dict, List

import numpy as np

from ..metrics import SimResult
from ...types import Trace

#: Recorder series names for the kernel's per-window row columns, in
#: :data:`~repro.sim.fast_engine.ckernel.SERIES_FIELDS` order (the last
#: column is the DRAM-queue occupancy gauge).
REPLAY_SERIES_NAMES = (
    "replay.l1_hits", "replay.l1_misses",
    "replay.l2_hits", "replay.l2_misses",
    "replay.llc_hits", "replay.llc_misses", "replay.llc_useful",
    "replay.pf_issued", "replay.pf_late", "replay.pf_dropped",
    "replay.dram_requests", "replay.dram_wait",
)

REPLAY_QUEUE_GAUGE = "replay.dram_queue_len"


def feed_kernel_series(recorder, series_rows: np.ndarray, n: int,
                       window: int) -> None:
    """Feed the compiled kernel's cumulative rows through a recorder.

    ``series_rows`` is the kernel's ``out["series"]`` matrix: one row
    per window, cumulative counters plus the queue gauge, exactly what
    :meth:`~repro.obs.timeseries.WindowRecorder.sample` expects.
    """
    for k, row in enumerate(series_rows.tolist()):
        end = (k + 1) * window
        if end > n:
            end = n
        recorder.sample(
            end,
            cumulative=dict(zip(REPLAY_SERIES_NAMES, row)),
            gauges={REPLAY_QUEUE_GAUGE: row[len(REPLAY_SERIES_NAMES)]})


def replay_windowed(sim, trace: Trace,
                    by_trigger: Dict[int, List[int]],
                    result: SimResult, recorder) -> None:
    """Replay ``trace`` on ``sim``'s fast-engine state, sampling series.

    Same contract as :func:`~repro.sim.fast_engine.scalar.replay_fast`
    — mutates ``result`` and the simulator's cache/DRAM stats in place
    — plus one :meth:`~repro.obs.timeseries.WindowRecorder.sample` call
    per window boundary.
    """
    cfg = sim.config
    core_cfg = cfg.core
    width = core_cfg.width
    rob_size = core_cfg.rob_size
    mshr_cap = core_cfg.mshrs

    l1_lat = cfg.l1d.latency
    l2_lat = l1_lat + cfg.l2.latency
    llc_lat = l2_lat + cfg.llc.latency

    l1, l2, llc = sim.l1d, sim.l2, sim.llc
    l1_sets = l1.sets
    l1_mask = cfg.l1d.sets - 1
    l1_ways = cfg.l1d.ways
    l1_hits = l1_misses = 0

    l2_sets = l2.sets
    l2_mask = cfg.l2.sets - 1
    l2_ways = cfg.l2.ways
    l2_hits = l2_misses = 0

    llc_sets = llc.sets
    llc_mask = cfg.llc.sets - 1
    llc_ways = cfg.llc.ways
    llc_hits = llc_misses = 0
    llc_useful = llc_evicted_unused = llc_pf_fills = 0

    dram = sim.dram
    dram_cfg = dram.config
    n_banks = dram_cfg.total_banks
    base_latency = dram_cfg.base_latency
    bank_occupancy = dram_cfg.bank_occupancy
    queue_size = dram_cfg.read_queue_size
    bank_free = dram.bank_free
    dram_q = dram.inflight
    dram_requests = 0
    dram_wait = 0
    wait_hist = dram.wait_histogram
    wait_observe = wait_hist.observe if wait_hist is not None else None

    dispatch = 0.0
    commit = 0.0
    last_instr_id = 0
    window = deque()   # (instr_id, completion) inside the ROB window
    window_append = window.append
    window_popleft = window.popleft
    mshr: List[int] = []

    pf_heap = sim._pf_heap
    pf_inflight: Dict[int, int] = sim._pf_inflight
    pf_inflight_pop = pf_inflight.pop
    pf_issued = pf_late = pf_dropped = 0
    trigger_get = by_trigger.get

    arrays = trace.arrays()
    ids_np = arrays.instr_ids
    n = len(ids_np)
    instr_ids_l = arrays.instr_id_list()
    blocks_l = arrays.block_list()

    # Trigger alignment, exactly as in replay_fast's prefetching loop.
    if by_trigger and n and arrays.monotone():
        pf_lists: List = [None] * n
        keys = np.fromiter(by_trigger.keys(), dtype=np.int64,
                           count=len(by_trigger))
        pos = np.minimum(np.searchsorted(ids_np, keys), np.int64(n - 1))
        hit = (ids_np[pos] == keys).tolist()
        for key, p, ok in zip(keys.tolist(), pos.tolist(), hit):
            if ok:
                pf_lists[p] = by_trigger[key]
    elif by_trigger:
        pf_lists = list(map(trigger_get, instr_ids_l))
    else:
        pf_lists = [None] * n

    series_window = recorder.window
    for w_start in range(0, n, series_window):
        w_stop = w_start + series_window
        if w_stop > n:
            w_stop = n
        for instr_id, block, pf_blocks in zip(
                instr_ids_l[w_start:w_stop], blocks_l[w_start:w_stop],
                pf_lists[w_start:w_stop]):
            # ---- core.dispatch_load ------------------------------------
            gap = instr_id - last_instr_id
            last_instr_id = instr_id
            if gap > 0:
                dispatch += gap / width
            while window:
                oldest = window[0]
                if instr_id - oldest[0] < rob_size:
                    break
                done = oldest[1]
                if done > dispatch:
                    dispatch = done
                window_popleft()

            # ---- drain completed prefetches into the LLC ---------------
            while pf_heap and pf_heap[0][0] <= dispatch:
                fill_block = heappop(pf_heap)[1]
                if pf_inflight_pop(fill_block, None) is None:
                    continue  # superseded (demand fetched it first)
                lines = llc_sets[fill_block & llc_mask]
                bit = lines.pop(fill_block, None)
                if bit is not None:
                    lines[fill_block] = bit  # resident: refresh, keep bit
                    continue
                lines[fill_block] = 1
                llc_pf_fills += 1
                if len(lines) > llc_ways:
                    victim = next(iter(lines))
                    if lines.pop(victim):
                        llc_evicted_unused += 1

            # ---- demand access through the hierarchy -------------------
            lines = l1_sets[block & l1_mask]
            if block in lines:
                l1_hits += 1
                del lines[block]
                lines[block] = 0
                done = dispatch + l1_lat
            else:
                l1_misses += 1
                l2_lines = l2_sets[block & l2_mask]
                if block in l2_lines:
                    l2_hits += 1
                    del l2_lines[block]
                    l2_lines[block] = 0
                    done = dispatch + l2_lat
                else:
                    l2_misses += 1
                    llc_lines = llc_sets[block & llc_mask]
                    bit = llc_lines.pop(block, None)
                    if bit is not None:
                        llc_hits += 1
                        if bit:
                            llc_useful += 1
                        llc_lines[block] = 0
                        done = dispatch + llc_lat
                    else:
                        llc_misses += 1
                        inflight_completion = pf_inflight_pop(block, None)
                        if inflight_completion is not None:
                            pf_late += 1
                            lookup_done = dispatch + llc_lat
                            completion = (
                                inflight_completion
                                if inflight_completion > lookup_done
                                else lookup_done)
                        else:
                            issue = dispatch + llc_lat
                            # core.mshr_admit
                            while mshr and mshr[0] <= issue:
                                heappop(mshr)
                            if len(mshr) >= mshr_cap:
                                freed = heappop(mshr)
                                if freed > issue:
                                    issue = freed
                                while mshr and mshr[0] <= issue:
                                    heappop(mshr)
                            # dram.access at int(issue)
                            cycle = int(issue)
                            while dram_q and dram_q[0] <= cycle:
                                heappop(dram_q)
                            start = cycle
                            if len(dram_q) >= queue_size:
                                if dram_q[0] > start:
                                    start = dram_q[0]
                                while dram_q and dram_q[0] <= start:
                                    heappop(dram_q)
                            bank = block % n_banks
                            if bank_free[bank] > start:
                                start = bank_free[bank]
                            bank_free[bank] = start + bank_occupancy
                            completion = start + base_latency
                            heappush(dram_q, completion)
                            dram_requests += 1
                            dram_wait += start - cycle
                            if wait_observe is not None:
                                wait_observe(start - cycle)
                            heappush(mshr, completion)  # core.mshr_fill
                        llc_lines[block] = 0
                        if len(llc_lines) > llc_ways:
                            victim = next(iter(llc_lines))
                            if llc_lines.pop(victim):
                                llc_evicted_unused += 1
                        # Same float round trip as the reference.
                        done = dispatch + (completion - dispatch)

                    # L2 fill, shared by LLC-hit and LLC-miss paths.
                    l2_lines[block] = 0
                    if len(l2_lines) > l2_ways:
                        del l2_lines[next(iter(l2_lines))]

                # L1 fill, shared by every L1-miss path.
                lines[block] = 0
                if len(lines) > l1_ways:
                    del lines[next(iter(lines))]

            # ---- core.complete_load ------------------------------------
            window_append((instr_id, done))
            if done > commit:
                commit = done

            # ---- issue this trigger's prefetches -----------------------
            if pf_blocks is not None:
                for pf_block in pf_blocks:
                    if (pf_block in llc_sets[pf_block & llc_mask]
                            or pf_block in pf_inflight):
                        pf_dropped += 1
                        continue
                    # dram.access at int(dispatch)
                    cycle = int(dispatch)
                    while dram_q and dram_q[0] <= cycle:
                        heappop(dram_q)
                    start = cycle
                    if len(dram_q) >= queue_size:
                        if dram_q[0] > start:
                            start = dram_q[0]
                        while dram_q and dram_q[0] <= start:
                            heappop(dram_q)
                    bank = pf_block % n_banks
                    if bank_free[bank] > start:
                        start = bank_free[bank]
                    bank_free[bank] = start + bank_occupancy
                    completion = start + base_latency
                    heappush(dram_q, completion)
                    dram_requests += 1
                    dram_wait += start - cycle
                    if wait_observe is not None:
                        wait_observe(start - cycle)
                    pf_inflight[pf_block] = completion
                    heappush(pf_heap, (completion, pf_block))
                    pf_issued += 1

        # ---- one series write-back per window ---------------------------
        recorder.sample(
            w_stop,
            cumulative={
                "replay.l1_hits": l1_hits,
                "replay.l1_misses": l1_misses,
                "replay.l2_hits": l2_hits,
                "replay.l2_misses": l2_misses,
                "replay.llc_hits": llc_hits,
                "replay.llc_misses": llc_misses,
                "replay.llc_useful": llc_useful,
                "replay.pf_issued": pf_issued,
                "replay.pf_late": pf_late,
                "replay.pf_dropped": pf_dropped,
                "replay.dram_requests": dram_requests,
                "replay.dram_wait": dram_wait,
            },
            gauges={REPLAY_QUEUE_GAUGE: len(dram_q)})

    # -- write the hoisted counters back ---------------------------------
    l1.hits, l1.misses = l1_hits, l1_misses
    l2.hits, l2.misses = l2_hits, l2_misses
    llc.hits, llc.misses = llc_hits, llc_misses
    llc.useful_prefetches = llc_useful
    llc.evicted_unused_prefetches = llc_evicted_unused
    llc.prefetch_fills = llc_pf_fills
    dram.requests = dram_requests
    dram.total_wait_cycles = dram_wait
    if pf_dropped:
        sim._pf_dropped.inc(pf_dropped)

    result.l1d_hits = l1_hits
    result.l2_hits = l2_hits
    result.llc_hits = llc_hits
    result.llc_misses = llc_misses
    result.pf_issued = pf_issued
    result.pf_late = pf_late
    # Late prefetches count as useful here, exactly as in the reference
    # loop; the caller's epilogue adds the LLC's in-cache useful count.
    result.pf_useful = pf_late

    # ---- core.finalize -------------------------------------------------
    drain = 0.0
    for entry in window:
        done = entry[1]
        if done > drain:
            drain = done
    cycles = trace.instruction_count / width
    if dispatch > cycles:
        cycles = dispatch
    if commit > cycles:
        cycles = commit
    if drain > cycles:
        cycles = drain
    result.cycles = cycles
