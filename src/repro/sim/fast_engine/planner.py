"""Columnar replay planner for the batch engine.

``engine="batch"`` splits each replay into a *plan* (derived once from
the trace columns and the prefetch file, no simulator state involved)
and an *execution* (the compiled kernel or the scalar loop).  The plan
captures three things:

1. **Eligibility** — whether the compiled kernel's preconditions hold.
   The kernel assumes strictly increasing instruction ids (its ROB is
   a ring buffer), non-negative block numbers (C ``%`` differs from
   Python's on negatives), and ids small enough that every derived
   cycle count stays well inside the 2^53 window where ``double``
   holds integers exactly.  Ineligible plans run on the scalar loop —
   slower, never wrong.

2. **Trigger alignment** — the per-access prefetch lists flattened to
   CSR form (``pf_starts``/``pf_blocks``): one searchsorted pass maps
   ``by_trigger`` keys onto trace positions, and triggers naming no
   trace instruction are dropped, exactly like the dict probe they
   replace.  The flat arrays are what the C kernel walks.

3. **Window segmentation** — the replay partitioned at prefetch
   trigger points.  A *free* window can never observe prefetch state:
   either the replay has no triggers at all (the prefetch-free
   baseline: one free window spanning the whole trace) or the window
   ends before the first trigger fires.  Every window from the first
   trigger onward is *coupled*: a fill from an earlier trigger may
   land on any access in it (including exactly on its first access —
   the window boundary), so classification and timing stay
   sequential there.  The invariants, enforced by construction and
   pinned by tests:

   - windows tile ``[0, n)`` exactly, in order, without overlap;
   - a coupled window starts at a trigger access, and triggers only
     ever start windows;
   - free windows carry no CSR entries and precede every coupled one.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ...types import TraceArrays

#: Instruction ids above this bound fall back to the scalar loop: the
#: kernel mixes cycle integers into ``double`` arithmetic, and keeping
#: ids (and therefore every derived dispatch/completion value for any
#: realistic trace) far below 2^53 makes that mixing exact.
MAX_KERNEL_INSTR_ID = 1 << 44


class Window(NamedTuple):
    """One planned replay span ``[start, stop)``."""

    start: int
    stop: int
    #: ``"free"`` — no prefetch interaction can occur inside;
    #: ``"coupled"`` — begins at a trigger, fills may land anywhere.
    kind: str


class ReplayPlan(NamedTuple):
    """Everything the batch driver needs to execute one replay."""

    n: int
    #: Whether the compiled kernel may run this plan.
    kernel_eligible: bool
    #: Human-readable reason when ``kernel_eligible`` is false.
    fallback_reason: Optional[str]
    #: CSR prefetch alignment: ``pf_blocks[pf_starts[i]:pf_starts[i+1]]``
    #: are the blocks access ``i`` triggers (empty arrays when the
    #: replay is prefetch-free or the plan is ineligible).
    pf_starts: np.ndarray
    pf_blocks: np.ndarray
    #: Sorted unique trace positions of trigger accesses — the window
    #: boundaries.  Kept as a column; densely-triggered replays
    #: (nextline triggers on every access) would otherwise spend more
    #: time building window tuples than replaying.
    trigger_positions: np.ndarray

    def windows(self) -> List[Window]:
        """The window tiling of ``[0, n)``, materialized on demand."""
        if not self.kernel_eligible and self.n > 0:
            # Unplannable replays run the scalar loop end to end: one
            # coupled window, timing sequential throughout.
            return [Window(0, self.n, "coupled")]
        return segment_windows(self.n, self.trigger_positions)

    @property
    def free_accesses(self) -> int:
        """Accesses inside interaction-free windows."""
        if not self.kernel_eligible:
            return 0
        if len(self.trigger_positions) == 0:
            return self.n
        return int(self.trigger_positions[0])


def segment_windows(n: int, trigger_positions: np.ndarray) -> List[Window]:
    """Tile ``[0, n)`` into free/coupled windows at trigger boundaries.

    ``trigger_positions`` must be sorted unique trace indices of
    accesses that issue at least one prefetch.
    """
    if n == 0:
        return []
    if len(trigger_positions) == 0:
        return [Window(0, n, "free")]
    windows: List[Window] = []
    first = int(trigger_positions[0])
    if first > 0:
        windows.append(Window(0, first, "free"))
    bounds = trigger_positions.tolist() + [n]
    for start, stop in zip(bounds, bounds[1:]):
        windows.append(Window(int(start), int(stop), "coupled"))
    return windows


def align_triggers(arrays: TraceArrays,
                   by_trigger: Dict[int, List[int]],
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten ``by_trigger`` into CSR arrays over trace positions.

    Returns ``(pf_starts, pf_blocks, trigger_positions)``.  Requires
    monotone instruction ids (positions are then unique); triggers
    naming no trace instruction are dropped.
    """
    n = len(arrays)
    pf_starts = np.zeros(n + 1, dtype=np.int64)
    if not by_trigger or n == 0:
        return pf_starts, np.empty(0, dtype=np.int64), pf_starts[:0]
    ids = arrays.instr_ids
    keys = np.fromiter(by_trigger.keys(), dtype=np.int64,
                       count=len(by_trigger))
    pos = np.minimum(np.searchsorted(ids, keys), np.int64(n - 1))
    hit_idx = np.nonzero(ids[pos] == keys)[0]
    # Monotone ids make hit positions unique, so sorting the surviving
    # keys by position gives the CSR fill order in one pass.
    order = hit_idx[np.argsort(pos[hit_idx], kind="stable")]
    trigger_positions = pos[order]
    counts = np.zeros(n + 1, dtype=np.int64)
    flat: List[int] = []
    extend = flat.extend
    keys_l = keys.tolist()
    pos_l = pos.tolist()
    for idx in order.tolist():
        blocks = by_trigger[keys_l[idx]]
        counts[pos_l[idx] + 1] = len(blocks)
        extend(blocks)
    np.cumsum(counts, out=pf_starts)
    pf_blocks = np.asarray(flat, dtype=np.int64)
    return pf_starts, pf_blocks, trigger_positions


def plan_replay(arrays: TraceArrays,
                by_trigger: Dict[int, List[int]]) -> ReplayPlan:
    """Build the :class:`ReplayPlan` for one replay.

    Pure function of the trace columns and the prefetch alignment;
    the cold-cache and kernel-availability checks stay with the
    driver, which can see the simulator.
    """
    n = len(arrays)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return ReplayPlan(0, True, None, np.zeros(1, dtype=np.int64),
                          empty, empty)
    if not arrays.monotone():
        return ReplayPlan(n, False, "non-monotone instruction ids",
                          np.zeros(n + 1, dtype=np.int64), empty, empty)
    if int(arrays.instr_ids[-1]) > MAX_KERNEL_INSTR_ID:
        return ReplayPlan(n, False, "instruction ids exceed kernel bound",
                          np.zeros(n + 1, dtype=np.int64), empty, empty)
    if int(arrays.blocks.min()) < 0:
        return ReplayPlan(n, False, "negative block numbers",
                          np.zeros(n + 1, dtype=np.int64), empty, empty)
    pf_starts, pf_blocks, trigger_positions = align_triggers(
        arrays, by_trigger)
    return ReplayPlan(n, True, None, pf_starts, pf_blocks,
                      trigger_positions)
