"""The simulator's optimized replay engines, split by strategy.

This package holds everything above the reference loop on the
speed/readability curve, in three layers:

- :mod:`.scalar` — the fused single-function Python loop behind
  ``engine="fast"`` (and the in-window fallback for ``"batch"``).
  All state in locals, arithmetic literally identical to the
  reference engine.
- :mod:`.planner` — the columnar replay planner behind
  ``engine="batch"``: window segmentation at prefetch trigger
  boundaries, CSR trigger→access alignment, and the eligibility
  checks that decide whether the compiled kernel may run.
- :mod:`.ckernel` — the on-demand compiled C replay kernel (same
  build machinery as :mod:`repro.snn.ckernel`), a transcription of
  the scalar loop with identical IEEE-754 operation order.
- :mod:`.batch` — the ``replay_batch`` driver tying the three
  together, falling back to :func:`replay_fast` whenever the plan
  is ineligible or no compiler is available.

The public surface is unchanged from the pre-package module:
``from repro.sim.fast_engine import replay_fast`` still works, and
``replay_batch`` is the only addition.
"""

from .scalar import replay_fast
from .batch import replay_batch
from .windowed import replay_windowed

__all__ = ["replay_fast", "replay_batch", "replay_windowed"]
