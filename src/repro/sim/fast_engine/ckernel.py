"""On-demand compiled C kernel for the batch replay engine.

The replay recurrence — dispatch cursor, ROB drain, MSHR/DRAM heaps,
prefetch fills — is sequential by nature: each access's timing depends
on the previous one's, so no NumPy expression can vectorize it without
changing results.  What *can* change is the cost per step: the scalar
loop pays Python interpreter dispatch on every probe and heap
operation.  This module compiles a C transcription of
:func:`repro.sim.fast_engine.scalar.replay_fast`'s prefetching loop
(which subsumes the prefetch-free loop: with no prefetch state every
prefetch branch is unreachable) and binds it through :mod:`ctypes`,
following the :mod:`repro.snn.ckernel` build machinery.

Bit-identity contract
---------------------
The C code performs exactly the same IEEE-754 double operations in the
same order as the scalar loop, which itself mirrors the reference
engine:

- ``dispatch += gap / width`` uses one correctly-rounded double
  division, like Python's int/int true division;
- cycle integers (DRAM completions, MSHR entries, instruction ids)
  stay ``int64_t`` and are converted to double only where the Python
  loop mixes them into float arithmetic — exact, because the planner
  rejects traces whose ids could push any derived cycle value toward
  2^53 (:data:`repro.sim.fast_engine.planner.MAX_KERNEL_INSTR_ID`);
- ``int(issue)`` becomes a C cast (both truncate toward zero;
  ``issue`` is never negative);
- the ``done = dispatch + (completion - dispatch)`` float round trip
  is kept verbatim;
- the prefetch completion heap holds (completion, block) pairs with
  Python's tuple ordering, and the heap routines port ``heapq``'s
  exact sift algorithms so ties in completion cycles pop in the same
  order as the Python heap (pop order determines LLC fill order,
  which determines LRU state);
- per-set LRU state is a block array in recency order, front =
  least recent — exactly the insertion-order dict discipline of
  :class:`repro.sim.cache.ArrayCache`;
- compiled with ``-ffp-contract=off -fno-fast-math`` so no FMA
  contraction or reassociation can change results.

If no compiler is available (or ``REPRO_NO_SIMKERNEL=1`` is set) the
batch engine transparently falls back to the scalar loop — slower,
never wrong.  Compiled objects share the snn kernel's cache directory
(``$REPRO_CKERNEL_CACHE``), keyed by a hash of source and compiler.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
from typing import Optional

import numpy as np

from ...snn.ckernel import CFLAGS, _cache_dir, _find_compiler

C_SOURCE = r"""
#include <stdint.h>

/* ---- int64 min-heap (heapq's sift algorithms) -------------------- */

static void iheap_push(int64_t *h, int64_t *len, int64_t item)
{
    int64_t pos = (*len)++;
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (item < h[parent]) {
            h[pos] = h[parent];
            pos = parent;
            continue;
        }
        break;
    }
    h[pos] = item;
}

static int64_t iheap_pop(int64_t *h, int64_t *len)
{
    int64_t last = h[--(*len)];
    int64_t end = *len, pos, child, ret;
    if (end == 0) {
        return last;
    }
    ret = h[0];
    pos = 0;
    child = 1;
    while (child < end) {
        int64_t right = child + 1;
        if (right < end && !(h[child] < h[right])) {
            child = right;
        }
        h[pos] = h[child];
        pos = child;
        child = 2 * pos + 1;
    }
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (last < h[parent]) {
            h[pos] = h[parent];
            pos = parent;
            continue;
        }
        break;
    }
    h[pos] = last;
    return ret;
}

/* ---- (completion, block) min-heap with Python tuple ordering ----- */

static int pair_lt(int64_t c1, int64_t b1, int64_t c2, int64_t b2)
{
    return (c1 < c2) || (c1 == c2 && b1 < b2);
}

static void pheap_push(int64_t *hc, int64_t *hb, int64_t *len,
                       int64_t c, int64_t b)
{
    int64_t pos = (*len)++;
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (pair_lt(c, b, hc[parent], hb[parent])) {
            hc[pos] = hc[parent];
            hb[pos] = hb[parent];
            pos = parent;
            continue;
        }
        break;
    }
    hc[pos] = c;
    hb[pos] = b;
}

static void pheap_pop(int64_t *hc, int64_t *hb, int64_t *len,
                      int64_t *out_c, int64_t *out_b)
{
    int64_t lc, lb, end, pos, child;
    lc = hc[--(*len)];
    lb = hb[*len];
    end = *len;
    if (end == 0) {
        *out_c = lc;
        *out_b = lb;
        return;
    }
    *out_c = hc[0];
    *out_b = hb[0];
    pos = 0;
    child = 1;
    while (child < end) {
        int64_t right = child + 1;
        if (right < end
                && !pair_lt(hc[child], hb[child], hc[right], hb[right])) {
            child = right;
        }
        hc[pos] = hc[child];
        hb[pos] = hb[child];
        pos = child;
        child = 2 * pos + 1;
    }
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (pair_lt(lc, lb, hc[parent], hb[parent])) {
            hc[pos] = hc[parent];
            hb[pos] = hb[parent];
            pos = parent;
            continue;
        }
        break;
    }
    hc[pos] = lc;
    hb[pos] = lb;
}

/* ---- open-addressing block -> completion map (pf_inflight) ------- */
/* Keys are block numbers (>= 0, planner-guaranteed); EMPTY/TOMB are
 * negative sentinels.  Inserts only ever follow a failed contains
 * check, so reusing tombstone slots is safe. */

#define MAP_EMPTY (-1)
#define MAP_TOMB  (-2)

static int64_t map_slot(int64_t key, int64_t mask)
{
    uint64_t x = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    return (int64_t)((x >> 29) & (uint64_t)mask);
}

static int map_contains(const int64_t *keys, int64_t mask, int64_t key)
{
    int64_t i = map_slot(key, mask);
    while (keys[i] != MAP_EMPTY) {
        if (keys[i] == key) {
            return 1;
        }
        i = (i + 1) & mask;
    }
    return 0;
}

static int map_remove(int64_t *keys, const int64_t *vals, int64_t mask,
                      int64_t key, int64_t *val_out)
{
    int64_t i = map_slot(key, mask);
    while (keys[i] != MAP_EMPTY) {
        if (keys[i] == key) {
            *val_out = vals[i];
            keys[i] = MAP_TOMB;
            return 1;
        }
        i = (i + 1) & mask;
    }
    return 0;
}

static void map_insert(int64_t *keys, int64_t *vals, int64_t mask,
                       int64_t key, int64_t val)
{
    int64_t i = map_slot(key, mask);
    while (keys[i] != MAP_EMPTY && keys[i] != MAP_TOMB) {
        i = (i + 1) & mask;
    }
    keys[i] = key;
    vals[i] = val;
}

/* ---- per-set LRU arrays (ArrayCache dict discipline) ------------- */
/* Each set is a block array in recency order, index 0 = least
 * recent; sets are strided ways+1 wide so an insert can land before
 * the over-capacity eviction, like the dict it mirrors. */

static int64_t set_find(const int64_t *blk, int64_t len, int64_t b)
{
    int64_t j;
    for (j = 0; j < len; j++) {
        if (blk[j] == b) {
            return j;
        }
    }
    return -1;
}

/* config word indices (keep in sync with the Python binding) */
#define CFG_WIDTH 0
#define CFG_ROB 1
#define CFG_MSHR 2
#define CFG_L1_MASK 3
#define CFG_L1_WAYS 4
#define CFG_L1_LAT 5
#define CFG_L2_MASK 6
#define CFG_L2_WAYS 7
#define CFG_L2_LAT 8
#define CFG_LLC_MASK 9
#define CFG_LLC_WAYS 10
#define CFG_LLC_LAT 11
#define CFG_BANKS 12
#define CFG_DRAM_LAT 13
#define CFG_BANK_OCC 14
#define CFG_QSIZE 15

/* counter word indices (keep in sync with the Python binding) */
#define CNT_L1_HITS 0
#define CNT_L1_MISSES 1
#define CNT_L2_HITS 2
#define CNT_L2_MISSES 3
#define CNT_LLC_HITS 4
#define CNT_LLC_MISSES 5
#define CNT_LLC_USEFUL 6
#define CNT_LLC_EVICTED_UNUSED 7
#define CNT_LLC_PF_FILLS 8
#define CNT_DRAM_REQUESTS 9
#define CNT_DRAM_WAIT 10
#define CNT_PF_ISSUED 11
#define CNT_PF_LATE 12
#define CNT_PF_DROPPED 13

int64_t pf_replay(
    int64_t n,
    const int64_t *instr_ids, const int64_t *blocks,
    const int64_t *pf_starts, const int64_t *pf_blocks,
    const int64_t *cfg,
    int64_t *l1_blk, int64_t *l1_len,
    int64_t *l2_blk, int64_t *l2_len,
    int64_t *llc_blk, uint8_t *llc_bit, int64_t *llc_len,
    int64_t *bank_free,
    int64_t *dram_q, int64_t *mshr,
    int64_t *pf_comp, int64_t *pf_blkh,
    int64_t *map_keys, int64_t *map_vals, int64_t map_mask,
    int64_t *rob_ids, double *rob_done, int64_t rob_cap,
    int64_t *wait_out,
    int64_t series_window, int64_t *series_out,
    int64_t *counts_out, double *floats_out)
{
    const int64_t width = cfg[CFG_WIDTH];
    const int64_t rob_size = cfg[CFG_ROB];
    const int64_t mshr_cap = cfg[CFG_MSHR];
    const int64_t l1_mask = cfg[CFG_L1_MASK];
    const int64_t l1_ways = cfg[CFG_L1_WAYS];
    const int64_t l1_lat = cfg[CFG_L1_LAT];
    const int64_t l2_mask = cfg[CFG_L2_MASK];
    const int64_t l2_ways = cfg[CFG_L2_WAYS];
    const int64_t l2_lat = cfg[CFG_L2_LAT];
    const int64_t llc_mask = cfg[CFG_LLC_MASK];
    const int64_t llc_ways = cfg[CFG_LLC_WAYS];
    const int64_t llc_lat = cfg[CFG_LLC_LAT];
    const int64_t n_banks = cfg[CFG_BANKS];
    const int64_t base_latency = cfg[CFG_DRAM_LAT];
    const int64_t bank_occupancy = cfg[CFG_BANK_OCC];
    const int64_t queue_size = cfg[CFG_QSIZE];
    const int64_t l1_stride = l1_ways + 1;
    const int64_t l2_stride = l2_ways + 1;
    const int64_t llc_stride = llc_ways + 1;

    double dispatch = 0.0, commit = 0.0, drain = 0.0;
    int64_t last_instr_id = 0;
    int64_t dram_len = 0, mshr_len = 0, pf_len = 0;
    int64_t rob_head = 0, rob_count = 0;
    int64_t l1_hits = 0, l1_misses = 0;
    int64_t l2_hits = 0, l2_misses = 0;
    int64_t llc_hits = 0, llc_misses = 0;
    int64_t llc_useful = 0, llc_evicted_unused = 0, llc_pf_fills = 0;
    int64_t dram_requests = 0, dram_wait = 0;
    int64_t pf_issued = 0, pf_late = 0, pf_dropped = 0;
    int64_t i, j, k;

    for (i = 0; i < n; i++) {
        int64_t instr_id = instr_ids[i];
        int64_t block = blocks[i];
        double done;

        /* ---- core.dispatch_load ---- */
        int64_t gap = instr_id - last_instr_id;
        last_instr_id = instr_id;
        if (gap > 0) {
            dispatch += (double)gap / (double)width;
        }
        while (rob_count > 0) {
            if (instr_id - rob_ids[rob_head] < rob_size) {
                break;
            }
            if (rob_done[rob_head] > dispatch) {
                dispatch = rob_done[rob_head];
            }
            rob_head = (rob_head + 1) % rob_cap;
            rob_count--;
        }

        /* ---- drain completed prefetches into the LLC ---- */
        while (pf_len > 0 && (double)pf_comp[0] <= dispatch) {
            int64_t fc, fb, dummy;
            pheap_pop(pf_comp, pf_blkh, &pf_len, &fc, &fb);
            if (!map_remove(map_keys, map_vals, map_mask, fb, &dummy)) {
                continue;  /* superseded (demand fetched it first) */
            }
            {
                int64_t set = fb & llc_mask;
                int64_t *sblk = llc_blk + set * llc_stride;
                uint8_t *sbit = llc_bit + set * llc_stride;
                int64_t len = llc_len[set];
                int64_t at = set_find(sblk, len, fb);
                if (at >= 0) {
                    /* resident: refresh recency, keep bit */
                    uint8_t bit = sbit[at];
                    for (j = at; j < len - 1; j++) {
                        sblk[j] = sblk[j + 1];
                        sbit[j] = sbit[j + 1];
                    }
                    sblk[len - 1] = fb;
                    sbit[len - 1] = bit;
                    continue;
                }
                sblk[len] = fb;
                sbit[len] = 1;
                len++;
                llc_pf_fills++;
                if (len > llc_ways) {
                    uint8_t vbit = sbit[0];
                    for (j = 0; j < len - 1; j++) {
                        sblk[j] = sblk[j + 1];
                        sbit[j] = sbit[j + 1];
                    }
                    len--;
                    if (vbit) {
                        llc_evicted_unused++;
                    }
                }
                llc_len[set] = len;
            }
        }

        /* ---- demand access through the hierarchy ---- */
        {
            int64_t l1_set = block & l1_mask;
            int64_t *l1s = l1_blk + l1_set * l1_stride;
            int64_t l1n = l1_len[l1_set];
            int64_t at = set_find(l1s, l1n, block);
            if (at >= 0) {
                /* L1D hit */
                l1_hits++;
                for (j = at; j < l1n - 1; j++) {
                    l1s[j] = l1s[j + 1];
                }
                l1s[l1n - 1] = block;
                done = dispatch + (double)l1_lat;
            }
            else {
                int64_t l2_set, l2n, at2;
                int64_t *l2s;
                l1_misses++;
                l2_set = block & l2_mask;
                l2s = l2_blk + l2_set * l2_stride;
                l2n = l2_len[l2_set];
                at2 = set_find(l2s, l2n, block);
                if (at2 >= 0) {
                    /* L2 hit: refresh L2, fill L1 */
                    l2_hits++;
                    for (j = at2; j < l2n - 1; j++) {
                        l2s[j] = l2s[j + 1];
                    }
                    l2s[l2n - 1] = block;
                    done = dispatch + (double)l2_lat;
                }
                else {
                    int64_t llc_set, llcn, at3;
                    int64_t *llcs;
                    uint8_t *llcb;
                    l2_misses++;
                    llc_set = block & llc_mask;
                    llcs = llc_blk + llc_set * llc_stride;
                    llcb = llc_bit + llc_set * llc_stride;
                    llcn = llc_len[llc_set];
                    at3 = set_find(llcs, llcn, block);
                    if (at3 >= 0) {
                        /* LLC hit; first demand touch of a prefetched
                         * line counts it useful. */
                        llc_hits++;
                        if (llcb[at3]) {
                            llc_useful++;
                        }
                        for (j = at3; j < llcn - 1; j++) {
                            llcs[j] = llcs[j + 1];
                            llcb[j] = llcb[j + 1];
                        }
                        llcs[llcn - 1] = block;
                        llcb[llcn - 1] = 0;
                        done = dispatch + (double)llc_lat;
                    }
                    else {
                        /* LLC miss: late-prefetch match or DRAM trip */
                        int64_t inflight;
                        double completion;
                        llc_misses++;
                        if (map_remove(map_keys, map_vals, map_mask,
                                       block, &inflight)) {
                            double lookup_done = dispatch + (double)llc_lat;
                            pf_late++;
                            completion = ((double)inflight > lookup_done)
                                ? (double)inflight : lookup_done;
                        }
                        else {
                            double issue = dispatch + (double)llc_lat;
                            int64_t cycle, start, bank, completion_i;
                            /* core.mshr_admit */
                            while (mshr_len > 0
                                    && (double)mshr[0] <= issue) {
                                iheap_pop(mshr, &mshr_len);
                            }
                            if (mshr_len >= mshr_cap) {
                                int64_t freed = iheap_pop(mshr, &mshr_len);
                                if ((double)freed > issue) {
                                    issue = (double)freed;
                                }
                                while (mshr_len > 0
                                        && (double)mshr[0] <= issue) {
                                    iheap_pop(mshr, &mshr_len);
                                }
                            }
                            /* dram.access at int(issue) */
                            cycle = (int64_t)issue;
                            while (dram_len > 0 && dram_q[0] <= cycle) {
                                iheap_pop(dram_q, &dram_len);
                            }
                            start = cycle;
                            if (dram_len >= queue_size) {
                                if (dram_q[0] > start) {
                                    start = dram_q[0];
                                }
                                while (dram_len > 0
                                        && dram_q[0] <= start) {
                                    iheap_pop(dram_q, &dram_len);
                                }
                            }
                            bank = block % n_banks;
                            if (bank_free[bank] > start) {
                                start = bank_free[bank];
                            }
                            bank_free[bank] = start + bank_occupancy;
                            completion_i = start + base_latency;
                            iheap_push(dram_q, &dram_len, completion_i);
                            wait_out[dram_requests] = start - cycle;
                            dram_requests++;
                            dram_wait += start - cycle;
                            iheap_push(mshr, &mshr_len, completion_i);
                            completion = (double)completion_i;
                        }
                        /* demand-install in the LLC (fresh insert) */
                        llcs[llcn] = block;
                        llcb[llcn] = 0;
                        llcn++;
                        if (llcn > llc_ways) {
                            uint8_t vbit = llcb[0];
                            for (j = 0; j < llcn - 1; j++) {
                                llcs[j] = llcs[j + 1];
                                llcb[j] = llcb[j + 1];
                            }
                            llcn--;
                            if (vbit) {
                                llc_evicted_unused++;
                            }
                        }
                        llc_len[llc_set] = llcn;
                        /* the reference's float round trip, verbatim */
                        done = dispatch + (completion - dispatch);
                    }
                    if (at3 >= 0) {
                        llc_len[llc_set] = llcn;
                    }

                    /* L2 fill, shared by LLC-hit and LLC-miss paths */
                    l2s[l2n] = block;
                    l2n++;
                    if (l2n > l2_ways) {
                        for (j = 0; j < l2n - 1; j++) {
                            l2s[j] = l2s[j + 1];
                        }
                        l2n--;
                    }
                    l2_len[l2_set] = l2n;
                }
                if (at2 >= 0) {
                    l2_len[l2_set] = l2n;
                }

                /* L1 fill, shared by every L1-miss path */
                l1s[l1n] = block;
                l1n++;
                if (l1n > l1_ways) {
                    for (j = 0; j < l1n - 1; j++) {
                        l1s[j] = l1s[j + 1];
                    }
                    l1n--;
                }
            }
            l1_len[l1_set] = l1n;
        }

        /* ---- core.complete_load ---- */
        rob_ids[(rob_head + rob_count) % rob_cap] = instr_id;
        rob_done[(rob_head + rob_count) % rob_cap] = done;
        rob_count++;
        if (done > commit) {
            commit = done;
        }

        /* ---- issue this trigger's prefetches ---- */
        for (k = pf_starts[i]; k < pf_starts[i + 1]; k++) {
            int64_t pfb = pf_blocks[k];
            int64_t set = pfb & llc_mask;
            int64_t cycle, start, bank, completion_i;
            if (set_find(llc_blk + set * llc_stride,
                         llc_len[set], pfb) >= 0
                    || map_contains(map_keys, map_mask, pfb)) {
                pf_dropped++;
                continue;
            }
            /* dram.access at int(dispatch) */
            cycle = (int64_t)dispatch;
            while (dram_len > 0 && dram_q[0] <= cycle) {
                iheap_pop(dram_q, &dram_len);
            }
            start = cycle;
            if (dram_len >= queue_size) {
                if (dram_q[0] > start) {
                    start = dram_q[0];
                }
                while (dram_len > 0 && dram_q[0] <= start) {
                    iheap_pop(dram_q, &dram_len);
                }
            }
            bank = pfb % n_banks;
            if (bank_free[bank] > start) {
                start = bank_free[bank];
            }
            bank_free[bank] = start + bank_occupancy;
            completion_i = start + base_latency;
            iheap_push(dram_q, &dram_len, completion_i);
            wait_out[dram_requests] = start - cycle;
            dram_requests++;
            dram_wait += start - cycle;
            map_insert(map_keys, map_vals, map_mask, pfb, completion_i);
            pheap_push(pf_comp, pf_blkh, &pf_len, completion_i, pfb);
            pf_issued++;
        }

        /* ---- per-window series write-back (pure observation) ----
         * One cumulative-counter snapshot per window boundary; the
         * Python recorder diffs adjacent rows into per-window deltas.
         * With series_window == 0 this is one always-false branch per
         * access; it never touches replay state, so results stay
         * bit-identical with the series on or off. */
        if (series_window > 0
                && ((i + 1) % series_window == 0 || i + 1 == n)) {
            int64_t *row = series_out + (i / series_window) * 13;
            row[0] = l1_hits;
            row[1] = l1_misses;
            row[2] = l2_hits;
            row[3] = l2_misses;
            row[4] = llc_hits;
            row[5] = llc_misses;
            row[6] = llc_useful;
            row[7] = pf_issued;
            row[8] = pf_late;
            row[9] = pf_dropped;
            row[10] = dram_requests;
            row[11] = dram_wait;
            row[12] = dram_len;  /* gauge: outstanding DRAM queue */
        }
    }

    /* ---- core.finalize (drain = max remaining ROB completion) ---- */
    for (i = 0; i < rob_count; i++) {
        double d = rob_done[(rob_head + i) % rob_cap];
        if (d > drain) {
            drain = d;
        }
    }

    counts_out[CNT_L1_HITS] = l1_hits;
    counts_out[CNT_L1_MISSES] = l1_misses;
    counts_out[CNT_L2_HITS] = l2_hits;
    counts_out[CNT_L2_MISSES] = l2_misses;
    counts_out[CNT_LLC_HITS] = llc_hits;
    counts_out[CNT_LLC_MISSES] = llc_misses;
    counts_out[CNT_LLC_USEFUL] = llc_useful;
    counts_out[CNT_LLC_EVICTED_UNUSED] = llc_evicted_unused;
    counts_out[CNT_LLC_PF_FILLS] = llc_pf_fills;
    counts_out[CNT_DRAM_REQUESTS] = dram_requests;
    counts_out[CNT_DRAM_WAIT] = dram_wait;
    counts_out[CNT_PF_ISSUED] = pf_issued;
    counts_out[CNT_PF_LATE] = pf_late;
    counts_out[CNT_PF_DROPPED] = pf_dropped;
    floats_out[0] = dispatch;
    floats_out[1] = commit;
    floats_out[2] = drain;
    return 0;
}
"""

_INT64_P = ctypes.POINTER(ctypes.c_int64)
_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_UINT8_P = ctypes.POINTER(ctypes.c_uint8)

#: Counter-word layout of ``counts_out`` (matches the C defines).
COUNT_FIELDS = (
    "l1_hits", "l1_misses", "l2_hits", "l2_misses",
    "llc_hits", "llc_misses", "llc_useful", "llc_evicted_unused",
    "llc_pf_fills", "dram_requests", "dram_wait",
    "pf_issued", "pf_late", "pf_dropped",
)

#: Column layout of each per-window ``series_out`` row (matches the C
#: write-back).  The first twelve columns are cumulative counters; the
#: last is the instantaneous DRAM-queue occupancy gauge at the window
#: boundary.
SERIES_FIELDS = (
    "l1_hits", "l1_misses", "l2_hits", "l2_misses",
    "llc_hits", "llc_misses", "llc_useful",
    "pf_issued", "pf_late", "pf_dropped",
    "dram_requests", "dram_wait", "dram_queue_len",
)

_kernel: Optional["ReplayKernel"] = None
_kernel_tried = False


class ReplayKernel:
    """ctypes binding of the compiled replay kernel."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        fn = lib.pf_replay
        fn.restype = ctypes.c_int64
        fn.argtypes = [
            ctypes.c_int64,
            _INT64_P, _INT64_P,          # instr_ids, blocks
            _INT64_P, _INT64_P,          # pf_starts, pf_blocks
            _INT64_P,                    # cfg
            _INT64_P, _INT64_P,          # l1_blk, l1_len
            _INT64_P, _INT64_P,          # l2_blk, l2_len
            _INT64_P, _UINT8_P, _INT64_P,  # llc_blk, llc_bit, llc_len
            _INT64_P,                    # bank_free
            _INT64_P, _INT64_P,          # dram_q, mshr
            _INT64_P, _INT64_P,          # pf_comp, pf_blkh
            _INT64_P, _INT64_P, ctypes.c_int64,  # map_keys/vals/mask
            _INT64_P, _DOUBLE_P, ctypes.c_int64,  # rob_ids/done/cap
            _INT64_P,                    # wait_out
            ctypes.c_int64, _INT64_P,    # series_window, series_out
            _INT64_P, _DOUBLE_P,         # counts_out, floats_out
        ]
        self._replay = fn

    def replay(self, instr_ids: np.ndarray, blocks: np.ndarray,
               pf_starts: np.ndarray, pf_blocks: np.ndarray,
               config, series_window: int = 0) -> dict:
        """Run one full replay; returns counters, cursors, and waits.

        ``config`` is a :class:`repro.sim.simulator.HierarchyConfig`.
        All state is kernel-local (caches assumed cold, prefetch state
        empty — the batch driver checks both).  With ``series_window``
        > 0, ``out["series"]`` holds one cumulative-counter row per
        window (:data:`SERIES_FIELDS` columns) — pure observation, the
        replay itself is unchanged.
        """
        n = len(instr_ids)
        npf = len(pf_blocks)
        cfg = np.array([
            config.core.width, config.core.rob_size, config.core.mshrs,
            config.l1d.sets - 1, config.l1d.ways, config.l1d.latency,
            config.l2.sets - 1, config.l2.ways,
            config.l1d.latency + config.l2.latency,
            config.llc.sets - 1, config.llc.ways,
            config.l1d.latency + config.l2.latency + config.llc.latency,
            config.dram.total_banks, config.dram.base_latency,
            config.dram.bank_occupancy, config.dram.read_queue_size,
        ], dtype=np.int64)

        def level(sets: int, ways: int):
            return (np.empty(sets * (ways + 1), dtype=np.int64),
                    np.zeros(sets, dtype=np.int64))

        l1_blk, l1_len = level(config.l1d.sets, config.l1d.ways)
        l2_blk, l2_len = level(config.l2.sets, config.l2.ways)
        llc_blk, llc_len = level(config.llc.sets, config.llc.ways)
        llc_bit = np.empty(config.llc.sets * (config.llc.ways + 1),
                           dtype=np.uint8)
        bank_free = np.zeros(config.dram.total_banks, dtype=np.int64)
        dram_q = np.empty(config.dram.read_queue_size + 2, dtype=np.int64)
        mshr = np.empty(config.core.mshrs + 2, dtype=np.int64)
        pf_comp = np.empty(npf + 1, dtype=np.int64)
        pf_blkh = np.empty(npf + 1, dtype=np.int64)
        map_cap = 1
        while map_cap < 4 * (npf + 1):
            map_cap *= 2
        map_keys = np.full(map_cap, -1, dtype=np.int64)
        map_vals = np.empty(map_cap, dtype=np.int64)
        rob_cap = config.core.rob_size + 2
        rob_ids = np.empty(rob_cap, dtype=np.int64)
        rob_done = np.empty(rob_cap, dtype=np.float64)
        wait_out = np.empty(n + npf + 1, dtype=np.int64)
        series_rows = (-(-n // series_window) if series_window > 0 else 0)
        series_out = np.zeros((max(1, series_rows), len(SERIES_FIELDS)),
                              dtype=np.int64)
        counts_out = np.zeros(len(COUNT_FIELDS), dtype=np.int64)
        floats_out = np.zeros(3, dtype=np.float64)

        instr_ids = np.ascontiguousarray(instr_ids, dtype=np.int64)
        blocks = np.ascontiguousarray(blocks, dtype=np.int64)
        pf_starts = np.ascontiguousarray(pf_starts, dtype=np.int64)
        pf_blocks = np.ascontiguousarray(pf_blocks, dtype=np.int64)

        def ip(a):
            return a.ctypes.data_as(_INT64_P)

        self._replay(
            n, ip(instr_ids), ip(blocks), ip(pf_starts), ip(pf_blocks),
            ip(cfg),
            ip(l1_blk), ip(l1_len), ip(l2_blk), ip(l2_len),
            ip(llc_blk), llc_bit.ctypes.data_as(_UINT8_P), ip(llc_len),
            ip(bank_free), ip(dram_q), ip(mshr),
            ip(pf_comp), ip(pf_blkh),
            ip(map_keys), ip(map_vals), map_cap - 1,
            ip(rob_ids), rob_done.ctypes.data_as(_DOUBLE_P), rob_cap,
            ip(wait_out),
            series_window if series_window > 0 else 0, ip(series_out),
            ip(counts_out),
            floats_out.ctypes.data_as(_DOUBLE_P),
        )
        out = dict(zip(COUNT_FIELDS, counts_out.tolist()))
        out["dispatch"] = float(floats_out[0])
        out["commit"] = float(floats_out[1])
        out["drain"] = float(floats_out[2])
        out["waits"] = wait_out[:out["dram_requests"]]
        if series_window > 0:
            out["series"] = series_out[:series_rows]
        return out


def _compile(cc: str) -> Optional[str]:
    tag = hashlib.sha256(
        (C_SOURCE + "\0" + cc + "\0" + " ".join(CFLAGS)
         + "\0" + sys.version).encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"replay_{tag}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        os.makedirs(cache, exist_ok=True)
        src_path = os.path.join(cache, f"replay_{tag}.c")
        tmp_so = os.path.join(cache, f"replay_{tag}.{os.getpid()}.tmp.so")
        with open(src_path, "w") as fh:
            fh.write(C_SOURCE)
        proc = subprocess.run(
            [cc, *CFLAGS, src_path, "-o", tmp_so],
            capture_output=True, timeout=120)
        if proc.returncode != 0:
            return None
        os.replace(tmp_so, so_path)  # atomic: concurrent compiles race safely
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None


def load_kernel() -> Optional[ReplayKernel]:
    """The process-wide compiled replay kernel, or ``None``.

    Compiles on first call (cached on disk afterwards).  Returns
    ``None`` — and the batch engine falls back to the scalar loop —
    when ``REPRO_NO_SIMKERNEL=1``, no C compiler is on PATH, or
    compilation/loading fails for any reason.
    """
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    _kernel_tried = True
    if os.environ.get("REPRO_NO_SIMKERNEL") == "1":
        return None
    cc = _find_compiler()
    if cc is None:
        return None
    so_path = _compile(cc)
    if so_path is None:
        return None
    try:
        _kernel = ReplayKernel(ctypes.CDLL(so_path))
    except OSError:
        _kernel = None
    return _kernel
