"""Multi-core simulation: private L1/L2 per core, shared LLC and DRAM.

The single-core replay (:mod:`repro.sim.simulator`) models the paper's
evaluation setting.  This module extends the same substrate to co-run
several traces the way a multi-programmed system would: each core has
its own timing model and private caches, while the LLC and the DRAM
banks are shared — so one program's streaming evicts another's working
set and prefetch traffic competes for bandwidth.  This is the substrate
behind the §2.3 interference motivation (see the ``noise`` experiment
for the shared-stream variant).

Cores are interleaved in global dispatch-cycle order: at every step the
core whose next access dispatches earliest proceeds, which keeps the
shared-resource timeline consistent without a full event queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError
from ..types import PrefetchRequest, Trace
from .cache import SetAssociativeCache
from .cpu import TimingCore
from .dram import DramModel
from .metrics import SimResult
from .simulator import HierarchyConfig


@dataclass
class MulticoreResult:
    """Results of a co-run: per-core metrics plus aggregates.

    Attributes:
        per_core: One :class:`SimResult` per core, in input order.
    """

    per_core: List[SimResult] = field(default_factory=list)

    def weighted_speedup(self, solo_ipcs: Sequence[float]) -> float:
        """Σ IPC_shared / IPC_solo — the standard co-run metric."""
        if len(solo_ipcs) != len(self.per_core):
            raise ConfigError("solo_ipcs length must match core count")
        total = 0.0
        for result, solo in zip(self.per_core, solo_ipcs):
            if solo <= 0:
                raise ConfigError("solo IPC must be positive")
            total += result.ipc / solo
        return total

    @property
    def total_dram_requests(self) -> int:
        """DRAM reads across all cores (shared channel)."""
        return max((r.dram_requests for r in self.per_core), default=0)


class _Core:
    """Per-core private state."""

    def __init__(self, index: int, trace: Trace,
                 prefetches: Iterable[PrefetchRequest],
                 config: HierarchyConfig):
        self.index = index
        self.trace = trace
        self.l1d = SetAssociativeCache(config.l1d)
        self.l2 = SetAssociativeCache(config.l2)
        self.core = TimingCore(config.core)
        self.position = 0
        budget = config.max_prefetches_per_access
        self.by_trigger: Dict[int, List[int]] = {}
        for pf in prefetches:
            blocks = self.by_trigger.setdefault(pf.trigger_instr_id, [])
            if len(blocks) < budget:
                blocks.append(pf.block)
        self.result = SimResult(trace_name=trace.name,
                                prefetcher_name="multicore",
                                instructions=trace.instruction_count,
                                loads=len(trace))

    def done(self) -> bool:
        return self.position >= len(self.trace)

    def next_dispatch_estimate(self) -> float:
        """Dispatch cycle of the next access if it ran now."""
        access = self.trace[self.position]
        gap = max(0, access.instr_id
                  - self.core._last_instr_id)  # estimate only
        return self.core.cycle + gap / self.core.config.width


class MulticoreSimulator:
    """Co-runs N traces over a shared LLC and DRAM."""

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 address_isolation: bool = True):
        self.config = config or HierarchyConfig()
        self.llc = SetAssociativeCache(self.config.llc)
        self.dram = DramModel(self.config.dram)
        self.address_isolation = address_isolation
        # Completion cycles are integers end to end (DRAM arithmetic
        # is all-int), as in the single-core simulator.
        self._pf_heap: List[Tuple[int, int]] = []
        self._pf_inflight: Dict[int, int] = {}
        self._ran = False

    # -- shared-LLC helpers --------------------------------------------------

    def _isolate(self, core_index: int, block: int) -> int:
        """Tag a block with the core's address space (separate programs)."""
        if not self.address_isolation:
            return block
        return block | (core_index << 44)

    def _drain_prefetches(self, cycle: float) -> None:
        while self._pf_heap and self._pf_heap[0][0] <= cycle:
            _, block = heapq.heappop(self._pf_heap)
            if self._pf_inflight.pop(block, None) is not None:
                self.llc.insert(block, prefetched=True)

    def _issue_prefetch(self, core: _Core, block: int, cycle: float) -> None:
        if self.llc.contains(block) or block in self._pf_inflight:
            return
        completion = self.dram.access(block, int(cycle))
        self._pf_inflight[block] = completion
        heapq.heappush(self._pf_heap, (completion, block))
        core.result.pf_issued += 1

    def _demand(self, core: _Core, block: int, dispatch: float) -> float:
        cfg = self.config
        result = core.result
        if core.l1d.lookup(block):
            result.l1d_hits += 1
            return cfg.l1d.latency
        if core.l2.lookup(block):
            result.l2_hits += 1
            core.l1d.insert(block)
            return cfg.l1d.latency + cfg.l2.latency
        lookup_latency = cfg.l1d.latency + cfg.l2.latency + cfg.llc.latency
        if self.llc.lookup(block):
            result.llc_hits += 1
            core.l2.insert(block)
            core.l1d.insert(block)
            return lookup_latency
        result.llc_misses += 1
        inflight = self._pf_inflight.pop(block, None)
        if inflight is not None:
            result.pf_late += 1
            result.pf_useful += 1
            completion = max(inflight, dispatch + lookup_latency)
        else:
            issue = core.core.mshr_admit(dispatch + lookup_latency)
            completion = self.dram.access(block, int(issue))
            core.core.mshr_fill(completion)
        self.llc.insert(block)
        core.l2.insert(block)
        core.l1d.insert(block)
        return completion - dispatch

    # -- main loop ---------------------------------------------------------

    def run(self, traces: Sequence[Trace],
            prefetch_files: Optional[Sequence[Iterable[PrefetchRequest]]] = None
            ) -> MulticoreResult:
        """Co-run the traces; returns per-core results.

        Args:
            traces: One demand-load trace per core (≥ 2).
            prefetch_files: Optional per-core prefetch files (same
                order); ``None`` runs without prefetching.
        """
        if self._ran:
            raise SimulationError("MulticoreSimulator instances are single-use")
        self._ran = True
        if len(traces) < 2:
            raise ConfigError("multicore run needs at least two traces")
        if prefetch_files is not None and len(prefetch_files) != len(traces):
            raise ConfigError("prefetch_files must match trace count")

        cores = [
            _Core(i, trace,
                  prefetch_files[i] if prefetch_files is not None else (),
                  self.config)
            for i, trace in enumerate(traces)
        ]

        active = [c for c in cores if not c.done()]
        while active:
            core = min(active, key=lambda c: c.next_dispatch_estimate())
            access = core.trace[core.position]
            core.position += 1
            dispatch = core.core.dispatch_load(access.instr_id)
            self._drain_prefetches(dispatch)
            block = self._isolate(core.index, access.block)
            latency = self._demand(core, block, dispatch)
            core.core.complete_load(access.instr_id, dispatch + latency)
            for pf_block in core.by_trigger.get(access.instr_id, ()):
                self._issue_prefetch(core,
                                     self._isolate(core.index, pf_block),
                                     dispatch)
            if core.done():
                active.remove(core)

        result = MulticoreResult()
        llc_useful = self.llc.useful_prefetches
        for core in cores:
            core.result.cycles = core.core.finalize(
                core.trace.instruction_count)
            core.result.dram_requests = self.dram.requests
            result.per_core.append(core.result)
        # Shared-LLC useful-prefetch accounting cannot attribute hits to
        # cores exactly; apportion by issued share (documented estimate).
        total_issued = sum(c.result.pf_issued for c in cores)
        for core in cores:
            if total_issued:
                share = core.result.pf_issued / total_issued
                core.result.pf_useful += int(round(llc_useful * share))
        return result


def simulate_multicore(traces: Sequence[Trace],
                       prefetch_files: Optional[Sequence] = None,
                       config: Optional[HierarchyConfig] = None
                       ) -> MulticoreResult:
    """Convenience wrapper for one co-run."""
    return MulticoreSimulator(config).run(traces, prefetch_files)
