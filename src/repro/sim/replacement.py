"""Replacement policies for the set-associative caches.

Two policies, both used by ChampSim-era simulators:

- :class:`LRUPolicy` — true LRU (ChampSim's default, and this
  reproduction's).
- :class:`SRRIPPolicy` — Static Re-Reference Interval Prediction
  (Jaleel et al., ISCA 2010): each line carries a 2-bit re-reference
  prediction value (RRPV); insertions predict a *long* interval
  (RRPV = max-1), hits promote to *immediate* (RRPV = 0), and victims
  are lines already at the maximum RRPV (ageing every line until one
  qualifies).  SRRIP resists scanning workloads thrashing the LLC.

A policy instance manages one cache *set*; the cache owns one policy
object per set.  Policies track only tag ordering/metadata — line
payload state (the prefetch bit) lives in the cache itself.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable

from ..errors import ConfigError


class ReplacementPolicy:
    """Per-set replacement bookkeeping interface."""

    def on_hit(self, tag: int) -> None:
        """A resident tag was referenced."""
        raise NotImplementedError

    def on_insert(self, tag: int) -> None:
        """A new tag was installed (victim already chosen/evicted)."""
        raise NotImplementedError

    def choose_victim(self) -> int:
        """Return the tag to evict (set is full)."""
        raise NotImplementedError

    def on_evict(self, tag: int) -> None:
        """A tag was removed."""
        raise NotImplementedError

    def tags(self) -> Iterable[int]:
        """All resident tags."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used ordering."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_hit(self, tag: int) -> None:
        self._order.move_to_end(tag)

    def on_insert(self, tag: int) -> None:
        self._order[tag] = None
        self._order.move_to_end(tag)

    def choose_victim(self) -> int:
        return next(iter(self._order))

    def on_evict(self, tag: int) -> None:
        self._order.pop(tag, None)

    def tags(self) -> Iterable[int]:
        return self._order.keys()


class SRRIPPolicy(ReplacementPolicy):
    """2-bit Static RRIP.

    Args:
        max_rrpv: Maximum re-reference prediction value (2-bit → 3).
    """

    def __init__(self, max_rrpv: int = 3):
        if max_rrpv < 1:
            raise ConfigError("max_rrpv must be >= 1")
        self.max_rrpv = max_rrpv
        self._rrpv: Dict[int, int] = {}

    def on_hit(self, tag: int) -> None:
        self._rrpv[tag] = 0

    def on_insert(self, tag: int) -> None:
        # Predict a long (but not distant) re-reference interval.
        self._rrpv[tag] = self.max_rrpv - 1

    def choose_victim(self) -> int:
        # Age everyone until some line reaches max RRPV; evict the
        # first such line (insertion order breaks ties, as in hardware
        # way-scan order).
        while True:
            for tag, rrpv in self._rrpv.items():
                if rrpv >= self.max_rrpv:
                    return tag
            for tag in self._rrpv:
                self._rrpv[tag] += 1

    def on_evict(self, tag: int) -> None:
        self._rrpv.pop(tag, None)

    def tags(self) -> Iterable[int]:
        return self._rrpv.keys()


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a per-set policy by name ("lru" or "srrip")."""
    if name == "lru":
        return LRUPolicy()
    if name == "srrip":
        return SRRIPPolicy()
    raise ConfigError(f"unknown replacement policy {name!r}")
