"""Banked DRAM latency model with queue-occupancy delays.

A deliberately simple but contention-aware model: requests map to one of
``channels * ranks * banks`` banks; each bank is busy for
``bank_occupancy`` cycles per request, and a request's latency is the
base access time plus any wait for its bank.  A bounded read queue adds
back-pressure when too many requests are in flight, so aggressive
prefetchers pay a bandwidth cost, as they do in the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List

from ..errors import ConfigError


@dataclass(frozen=True)
class DramConfig:
    """DRAM organisation and timing (paper Table 3 shape).

    Attributes:
        channels: Number of channels (paper: 1).
        ranks: Ranks per channel (paper: 8).
        banks: Banks per rank (paper: 8).
        base_latency: Idle-bank access latency in core cycles
            (tRP + tRCD + tCAS at the core clock).
        bank_occupancy: Cycles a bank stays busy per request.
        read_queue_size: Outstanding-request cap (paper: 64); requests
            beyond it wait for the oldest to complete.
    """

    channels: int = 1
    ranks: int = 8
    banks: int = 8
    base_latency: int = 150
    bank_occupancy: int = 24
    read_queue_size: int = 64

    def __post_init__(self) -> None:
        if min(self.channels, self.ranks, self.banks) <= 0:
            raise ConfigError("DRAM geometry values must be positive")
        if self.base_latency <= 0 or self.bank_occupancy <= 0:
            raise ConfigError("DRAM timing values must be positive")
        if self.read_queue_size <= 0:
            raise ConfigError("read_queue_size must be positive")

    @property
    def total_banks(self) -> int:
        """Total independently schedulable banks."""
        return self.channels * self.ranks * self.banks


class DramModel:
    """Tracks per-bank availability and a bounded in-flight window."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self._bank_free_at: List[int] = [0] * config.total_banks
        self._inflight: List[int] = []  # completion cycles, kept sorted-ish
        self.requests = 0
        self.total_wait_cycles = 0
        #: Optional :class:`repro.obs.Histogram` fed one sample per
        #: request (cycles spent waiting on bank/queue availability).
        #: ``None`` keeps the access path observation-free.
        self.wait_histogram = None

    def _bank_of(self, block: int) -> int:
        # Simple block-interleaved bank hash.
        return block % self.config.total_banks

    def access(self, block: int, cycle: int) -> int:
        """Issue a read for ``block`` at ``cycle``; return completion cycle."""
        cfg = self.config
        # Queue back-pressure: wait for the oldest in-flight request if full.
        self._inflight = [c for c in self._inflight if c > cycle]
        start = cycle
        if len(self._inflight) >= cfg.read_queue_size:
            start = max(start, min(self._inflight))
            self._inflight = [c for c in self._inflight if c > start]
        bank = self._bank_of(block)
        start = max(start, self._bank_free_at[bank])
        self._bank_free_at[bank] = start + cfg.bank_occupancy
        completion = start + cfg.base_latency
        self._inflight.append(completion)
        self.requests += 1
        self.total_wait_cycles += start - cycle
        if self.wait_histogram is not None:
            self.wait_histogram.observe(start - cycle)
        return completion

    def queue_len(self, cycle: int) -> int:
        """Outstanding requests still in flight at ``cycle`` (read-only)."""
        return sum(1 for c in self._inflight if c > cycle)

    @property
    def average_wait(self) -> float:
        """Mean cycles requests spent waiting for bank/queue availability."""
        if self.requests == 0:
            return 0.0
        return self.total_wait_cycles / self.requests


class FlatDram:
    """Flattened bank-timing kernel used by the fast replay engine.

    Request-for-request identical to :class:`DramModel`: the read-queue
    back-pressure rule only ever observes the *count* of outstanding
    completions and their *minimum*, so the rebuilt-list window can be
    replaced by a completion-time min-heap (O(log q) per request
    instead of O(q) list rebuilds) without changing any returned
    completion cycle.  Bank-free times live in one flat list.

    The replay fast path hoists ``bank_free`` and ``inflight`` into
    loop locals and inlines :meth:`access`; the method itself serves
    setup, tests, and parity checks.  All cycles are integers end to
    end.
    """

    __slots__ = ("config", "bank_free", "inflight", "requests",
                 "total_wait_cycles", "wait_histogram")

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        #: Cycle at which each bank is next free (flat, bank-indexed).
        self.bank_free: List[int] = [0] * config.total_banks
        #: Min-heap of outstanding completion cycles.
        self.inflight: List[int] = []
        self.requests = 0
        self.total_wait_cycles = 0
        #: Optional :class:`repro.obs.Histogram`, as on :class:`DramModel`.
        self.wait_histogram = None

    def access(self, block: int, cycle: int) -> int:
        """Issue a read for ``block`` at ``cycle``; return completion cycle."""
        cfg = self.config
        inflight = self.inflight
        while inflight and inflight[0] <= cycle:
            heapq.heappop(inflight)
        start = cycle
        if len(inflight) >= cfg.read_queue_size:
            if inflight[0] > start:
                start = inflight[0]
            while inflight and inflight[0] <= start:
                heapq.heappop(inflight)
        bank = block % cfg.total_banks
        if self.bank_free[bank] > start:
            start = self.bank_free[bank]
        self.bank_free[bank] = start + cfg.bank_occupancy
        completion = start + cfg.base_latency
        heapq.heappush(inflight, completion)
        self.requests += 1
        self.total_wait_cycles += start - cycle
        if self.wait_histogram is not None:
            self.wait_histogram.observe(start - cycle)
        return completion

    def queue_len(self, cycle: int) -> int:
        """Outstanding requests still in flight at ``cycle`` (read-only)."""
        return sum(1 for c in self.inflight if c > cycle)

    @property
    def average_wait(self) -> float:
        """Mean cycles requests spent waiting for bank/queue availability."""
        if self.requests == 0:
            return 0.0
        return self.total_wait_cycles / self.requests
