"""Simulation result container and the paper's derived metrics.

The paper's appendix defines::

    accuracy = useful prefetches / issued prefetches
    coverage = useful prefetches / baseline (no-prefetch) LLC misses

Coverage therefore needs a baseline run; :func:`coverage` takes the
baseline miss count explicitly, and the harness threads it through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimResult:
    """Everything a single simulation run reports.

    Attributes:
        trace_name: Name of the simulated trace.
        prefetcher_name: Name of the prefetcher that produced the
            prefetch file ("none" for the baseline).
        instructions: Total retired instructions.
        cycles: Total cycles from the timing model.
        loads: Number of demand loads replayed.
        l1d_hits / l2_hits / llc_hits: Demand hits per level.
        llc_misses: Demand LLC misses (went to DRAM or matched an
            in-flight prefetch).
        pf_issued: Prefetches injected (post-dedup, within budget).
        pf_useful: Prefetched blocks later hit by a demand access.
        pf_late: Demand accesses that matched a still-in-flight prefetch
            (counted in both ``llc_misses`` and ``pf_useful``-adjacent
            accounting, as ChampSim does for late prefetches).
        dram_requests: Total DRAM reads (demand + prefetch).
        extra: Free-form per-run diagnostics.
    """

    trace_name: str
    prefetcher_name: str
    instructions: int = 0
    cycles: float = 0.0
    loads: int = 0
    l1d_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    pf_issued: int = 0
    pf_useful: int = 0
    pf_late: int = 0
    dram_requests: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def llc_demand_accesses(self) -> int:
        """Demand accesses that reached the LLC."""
        return self.llc_hits + self.llc_misses

    def accuracy(self) -> float:
        """Useful / issued prefetches (0 when none were issued)."""
        return accuracy(self.pf_useful, self.pf_issued)

    def coverage(self, baseline_misses: int) -> float:
        """Useful prefetches / baseline LLC misses."""
        return coverage(self.pf_useful, baseline_misses)


def accuracy(useful: int, issued: int) -> float:
    """Prefetch accuracy; 0.0 when no prefetches were issued."""
    if issued <= 0:
        return 0.0
    return useful / issued


def coverage(useful: int, baseline_misses: int) -> float:
    """Prefetch coverage against a no-prefetch baseline's misses."""
    if baseline_misses <= 0:
        return 0.0
    return useful / baseline_misses


def speedup(result: SimResult, baseline: SimResult) -> float:
    """IPC ratio of ``result`` over ``baseline``."""
    if baseline.ipc <= 0:
        return 0.0
    return result.ipc / baseline.ipc
