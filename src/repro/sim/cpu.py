"""MLP-aware timing core used to turn load latencies into IPC.

The model captures the three effects that determine how much a
prefetcher helps IPC, without simulating every instruction:

- **dispatch width** — non-load instructions flow at ``width`` per cycle;
- **ROB runahead** — dispatch may run at most ``rob_size`` instructions
  ahead of the oldest incomplete load, so independent misses overlap
  (memory-level parallelism) but a long-latency miss eventually stalls
  the window;
- **MSHR cap** — at most ``mshrs`` misses to DRAM may be outstanding.

This is the standard "interval model" approximation used by many
prefetching studies; see ``DESIGN.md`` for the substitution note.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class CoreConfig:
    """Timing-core parameters.

    Attributes:
        width: Instructions dispatched/retired per cycle.
        rob_size: Maximum instructions between dispatch and the oldest
            incomplete load.
        mshrs: Maximum outstanding long-latency (DRAM) loads.
    """

    width: int = 4
    rob_size: int = 256
    mshrs: int = 16

    def __post_init__(self) -> None:
        if self.width <= 0 or self.rob_size <= 0 or self.mshrs <= 0:
            raise ConfigError("core parameters must be positive")


class TimingCore:
    """Sequentially accounts load completions into a cycle count.

    Drive it by calling :meth:`dispatch_load` once per load in program
    order with the load's instruction id; the caller then computes the
    load's latency (via the cache hierarchy at the returned dispatch
    cycle) and calls :meth:`complete_load`.
    """

    def __init__(self, config: CoreConfig = CoreConfig()):
        self.config = config
        self._dispatch_cycle = 0.0
        self._last_instr_id = 0
        self._commit_cycle = 0.0
        # (instr_id, completion_cycle) of loads still inside the ROB window.
        self._window: Deque[Tuple[int, float]] = deque()
        # Completion cycles of outstanding DRAM misses (MSHR occupancy),
        # kept as a min-heap: admission only ever consumes the earliest
        # completion, so a heap replaces the old sorted-deque rebuild
        # without changing any returned cycle.  DRAM completions are
        # integer cycles end to end.
        self._mshr: List[int] = []

    @property
    def cycle(self) -> float:
        """Current dispatch-cursor cycle."""
        return self._dispatch_cycle

    def dispatch_load(self, instr_id: int) -> float:
        """Advance the front end to this load; return its dispatch cycle."""
        gap = max(0, instr_id - self._last_instr_id)
        self._last_instr_id = instr_id
        self._dispatch_cycle += gap / self.config.width
        # ROB limit: cannot dispatch more than rob_size instructions past
        # the oldest incomplete load.
        while self._window:
            oldest_id, oldest_done = self._window[0]
            if instr_id - oldest_id < self.config.rob_size:
                break
            self._dispatch_cycle = max(self._dispatch_cycle, oldest_done)
            self._window.popleft()
        return self._dispatch_cycle

    def mshr_admit(self, cycle: float) -> float:
        """Account one DRAM miss entering the MSHRs at ``cycle``.

        Returns the (possibly delayed) cycle at which the miss may
        actually issue, once an MSHR is free.
        """
        mshr = self._mshr
        while mshr and mshr[0] <= cycle:
            heapq.heappop(mshr)
        if len(mshr) >= self.config.mshrs:
            cycle = max(cycle, heapq.heappop(mshr))
            while mshr and mshr[0] <= cycle:
                heapq.heappop(mshr)
        return cycle

    def mshr_fill(self, completion_cycle: int) -> None:
        """Record the completion cycle of an issued DRAM miss."""
        heapq.heappush(self._mshr, completion_cycle)

    def complete_load(self, instr_id: int, completion_cycle: float) -> None:
        """Record a load's data-ready cycle; updates in-order commit."""
        self._window.append((instr_id, completion_cycle))
        self._commit_cycle = max(self._commit_cycle, completion_cycle)

    def finalize(self, total_instructions: int) -> float:
        """Drain the pipeline; return total cycles for the whole trace."""
        drain = max((done for _, done in self._window), default=0.0)
        front_end = total_instructions / self.config.width
        return max(front_end, self._dispatch_cycle, self._commit_cycle, drain)
