"""Two-phase trace replay: demand loads + a precomputed prefetch file.

This mirrors the ML-DPC ChampSim fork's flow (paper §4.1): prefetchers
run offline over the load trace to emit ``PrefetchRequest`` records;
the simulator then replays the trace, injecting each prefetch into the
LLC when its triggering instruction dispatches.  Prefetching is
memory→LLC only, exactly as in the competition setting.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError, EngineFallbackWarning, SimulationError
from ..obs import Counter, Observability
from ..resilience.faults import active as _faults_active
from ..types import PrefetchRequest, Trace
from .cache import ArrayCache, CacheConfig, SetAssociativeCache
from .cpu import CoreConfig, TimingCore
from .dram import DramConfig, DramModel, FlatDram
from .fast_engine import replay_batch, replay_fast, replay_windowed
from .fast_engine.windowed import REPLAY_QUEUE_GAUGE, REPLAY_SERIES_NAMES
from .metrics import SimResult

#: Replay engines accepted by :class:`Simulator` and :func:`simulate`.
ENGINES = ("batch", "fast", "reference")


@dataclass(frozen=True)
class HierarchyConfig:
    """The full memory-hierarchy configuration (paper Table 3 defaults).

    Attributes:
        l1d / l2 / llc: Per-level cache geometry and latency.
        dram: DRAM organisation and timing.
        core: Timing-core parameters.
        max_prefetches_per_access: Issue budget per triggering load
            (paper: 2).
    """

    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", sets=64, ways=12, latency=5))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", sets=1024, ways=8, latency=10))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="LLC", sets=2048, ways=16, latency=20))
    dram: DramConfig = field(default_factory=DramConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    max_prefetches_per_access: int = 2

    @classmethod
    def scaled(cls, divisor: int = 16) -> "HierarchyConfig":
        """A proportionally shrunk hierarchy for scaled-down traces.

        The paper replays 1M loads against a 2MB LLC; this
        reproduction's default traces are 20–50× shorter, so with the
        full-size hierarchy their working sets never pressure the LLC
        and temporal reuse all hits in cache.  Dividing every cache's
        set count by ``divisor`` (default 16 → 128KB LLC) restores the
        paper's working-set:LLC ratio while keeping latencies and the
        rest of Table 3 intact.
        """
        return cls(
            l1d=CacheConfig(name="L1D", sets=max(1, 64 // divisor),
                            ways=12, latency=5),
            l2=CacheConfig(name="L2", sets=max(1, 1024 // divisor),
                           ways=8, latency=10),
            llc=CacheConfig(name="LLC", sets=max(1, 2048 // divisor),
                            ways=16, latency=20),
        )


class Simulator:
    """Replays one trace with one prefetch file.

    Instances are single-use: construct, call :meth:`run`, read the
    returned :class:`~repro.sim.metrics.SimResult`.

    With an enabled :class:`~repro.obs.Observability` bundle, the run
    emits prefetch-lifecycle events (``pf.issued`` → ``pf.fill`` →
    ``pf.useful``/``pf.late``/``pf.dropped``/``pf.evicted_unused``),
    mirrors per-level hit/miss counters and the DRAM queue-wait
    histogram into the metrics registry, and brackets the replay in
    ``run.begin``/``run.end`` events.  With the default disabled
    bundle the replay loop pays only a handful of boolean checks.

    Three replay engines produce bit-identical results (enforced by
    ``tests/test_replay_parity.py``):

    - ``"batch"`` (default) — the planned columnar replay in
      :mod:`repro.sim.fast_engine.batch`: cached trace columns, window
      segmentation, and a compiled C kernel for the sequential
      recurrence, falling back to the fused scalar loop per plan;
    - ``"fast"`` — the flat-array scalar loop in
      :mod:`repro.sim.fast_engine` over :class:`~repro.sim.cache.ArrayCache`
      levels and :class:`~repro.sim.dram.FlatDram`;
    - ``"reference"`` — the straightforward per-object loop below, kept
      as the readable specification and parity oracle.

    The batch and fast engines cover LRU replacement and metrics-level
    observability; requesting per-event tracing or an ``srrip`` level
    falls back to the reference engine, and ``"batch"`` under armed
    fault injection falls back to ``"fast"``.  Every downgrade emits a
    typed :class:`~repro.errors.EngineFallbackWarning` (``engine_used``
    tells which engine ran), so callers can always ask for the fastest
    engine and still see when they did not get it.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 obs: Optional[Observability] = None,
                 engine: str = "batch"):
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown replay engine {engine!r}; expected one of {ENGINES}")
        self.config = config or HierarchyConfig()
        self.obs = obs if obs is not None else Observability.disabled()
        self._trace_events = self.obs.tracer.enabled
        # Resolve the engine: the batch/fast loops have no
        # event-tracing hooks and only implement LRU, so those
        # configurations run on the reference engine; the batch plan
        # additionally steps aside while fault injection is armed
        # (fault plans corrupt traces and state mid-replay — the
        # scalar loop is the proven path for chaos runs).
        fallback_reason = None
        non_lru = (self.config.l1d.replacement != "lru"
                   or self.config.l2.replacement != "lru"
                   or self.config.llc.replacement != "lru")
        if engine in ("batch", "fast") and (self._trace_events or non_lru):
            fallback_reason = ("event tracing is enabled"
                               if self._trace_events
                               else "a non-LRU replacement policy is "
                                    "configured")
            engine = "reference"
        elif engine == "batch" and _faults_active() is not None:
            fallback_reason = "fault injection is armed"
            engine = "fast"
        if fallback_reason is not None:
            warnings.warn(EngineFallbackWarning(
                f"replay engine downgraded to {engine!r}: "
                f"{fallback_reason}"), stacklevel=2)
        self.engine_requested = engine
        #: The engine that will actually run (after fallback).
        self.engine_used = engine
        if engine in ("batch", "fast"):
            self.l1d = ArrayCache(self.config.l1d)
            self.l2 = ArrayCache(self.config.l2)
            self.llc = ArrayCache(self.config.llc)
            self.dram = FlatDram(self.config.dram)
        else:
            self.l1d = SetAssociativeCache(self.config.l1d)
            self.l2 = SetAssociativeCache(self.config.l2)
            self.llc = SetAssociativeCache(self.config.llc)
            self.dram = DramModel(self.config.dram)
        self.core = TimingCore(self.config.core)
        # Typed drop counter (always live — drops are rare, so this
        # costs nothing on the hot path); mirrored into the registry
        # and ``result.extra`` at the end of the run.
        self._pf_dropped = Counter()
        # In-flight prefetches as a min-heap of (completion_cycle, block)
        # plus a membership map for O(1) match.  Completion cycles are
        # integers end to end (DRAM arithmetic is all-int).
        self._pf_heap: List[Tuple[int, int]] = []
        self._pf_inflight: Dict[int, int] = {}
        self._ran = False

    # -- prefetch handling -------------------------------------------------

    def _drain_completed_prefetches(self, cycle: float) -> None:
        """Fill the LLC with every prefetch whose data has arrived."""
        while self._pf_heap and self._pf_heap[0][0] <= cycle:
            _, block = heapq.heappop(self._pf_heap)
            completion = self._pf_inflight.pop(block, None)
            if completion is None:
                continue  # superseded (demand fetched it first)
            if self._trace_events:
                evicted_before = self.llc.evicted_unused_prefetches
                victim = self.llc.insert(block, prefetched=True)
                self.obs.tracer.emit("pf.fill", block=block, cycle=cycle)
                if self.llc.evicted_unused_prefetches > evicted_before:
                    self.obs.tracer.emit("pf.evicted_unused", block=victim,
                                         cycle=cycle)
            else:
                self.llc.insert(block, prefetched=True)

    def _issue_prefetch(self, block: int, cycle: float, result: SimResult,
                        trigger: Optional[int] = None) -> None:
        if self.llc.contains(block) or block in self._pf_inflight:
            self._pf_dropped.inc()
            if self._trace_events:
                reason = ("inflight" if block in self._pf_inflight
                          else "resident")
                self.obs.tracer.emit("pf.dropped", block=block, cycle=cycle,
                                     trigger=trigger, reason=reason)
            return
        completion = self.dram.access(block, int(cycle))
        self._pf_inflight[block] = completion
        heapq.heappush(self._pf_heap, (completion, block))
        result.pf_issued += 1
        if self._trace_events:
            self.obs.tracer.emit("pf.issued", block=block, cycle=cycle,
                                 completion=completion, trigger=trigger)

    # -- demand path -------------------------------------------------------

    def _demand_access(self, block: int, dispatch: float,
                       result: SimResult) -> float:
        """Serve one demand load; returns its total latency in cycles."""
        cfg = self.config
        if self.l1d.lookup(block):
            result.l1d_hits += 1
            return cfg.l1d.latency
        if self.l2.lookup(block):
            result.l2_hits += 1
            self.l1d.insert(block)
            return cfg.l1d.latency + cfg.l2.latency
        lookup_latency = cfg.l1d.latency + cfg.l2.latency + cfg.llc.latency
        trace_events = self._trace_events
        useful_before = self.llc.useful_prefetches if trace_events else 0
        if self.llc.lookup(block):
            result.llc_hits += 1
            if trace_events and self.llc.useful_prefetches > useful_before:
                self.obs.tracer.emit("pf.useful", block=block, cycle=dispatch)
            self.l2.insert(block)
            self.l1d.insert(block)
            return lookup_latency
        result.llc_misses += 1
        inflight = self._pf_inflight.pop(block, None)
        if inflight is not None:
            # Late prefetch: demand waits only for the remaining latency.
            result.pf_late += 1
            result.pf_useful += 1
            completion = max(inflight, dispatch + lookup_latency)
            if trace_events:
                self.obs.tracer.emit("pf.late", block=block, cycle=dispatch,
                                     waited=completion - dispatch)
        else:
            issue = self.core.mshr_admit(dispatch + lookup_latency)
            completion = self.dram.access(block, int(issue))
            self.core.mshr_fill(completion)
        if trace_events:
            evicted_before = self.llc.evicted_unused_prefetches
            victim = self.llc.insert(block)
            if self.llc.evicted_unused_prefetches > evicted_before:
                self.obs.tracer.emit("pf.evicted_unused", block=victim,
                                     cycle=dispatch)
        else:
            self.llc.insert(block)
        self.l2.insert(block)
        self.l1d.insert(block)
        return completion - dispatch

    # -- main loop ---------------------------------------------------------

    def run(self, trace: Trace,
            prefetches: Iterable[PrefetchRequest] = (),
            prefetcher_name: str = "none") -> SimResult:
        """Replay ``trace`` with the given prefetch file.

        Args:
            trace: The demand-load trace.
            prefetches: Prefetch records; triggers must reference
                instruction ids present in the trace (others are
                silently ignored, as ChampSim does).
            prefetcher_name: Label recorded in the result.

        Returns:
            The populated :class:`SimResult`.

        Raises:
            SimulationError: if the simulator instance is reused.
        """
        if self._ran:
            raise SimulationError("Simulator instances are single-use")
        self._ran = True

        budget = self.config.max_prefetches_per_access
        by_trigger: Dict[int, List[int]] = {}
        for pf in prefetches:
            if pf.address < 0:
                # A corrupt prefetch file (or a buggy prefetcher slipping
                # past the guard) must degrade to a dropped prefetch, not
                # crash the replay with a nonsense block index.
                self._pf_dropped.inc()
                if self._trace_events:
                    self.obs.tracer.emit(
                        "pf.dropped", block=pf.address,
                        trigger=pf.trigger_instr_id, reason="invalid")
                continue
            blocks = by_trigger.setdefault(pf.trigger_instr_id, [])
            if len(blocks) < budget:
                # pf.address >> BLOCK_BITS inline: this loop runs once
                # per prefetch record and the ``block`` property call
                # is measurable at prefetch-file sizes.
                blocks.append(pf.address >> 6)

        result = SimResult(trace_name=trace.name,
                           prefetcher_name=prefetcher_name,
                           instructions=trace.instruction_count,
                           loads=len(trace))

        if self.obs.enabled:
            self.dram.wait_histogram = self.obs.registry.histogram(
                "dram.queue_wait_cycles", run=prefetcher_name,
                trace=trace.name)
        if self._trace_events:
            self.obs.tracer.emit("run.begin", trace=trace.name,
                                 prefetcher=prefetcher_name,
                                 loads=len(trace))

        # Windowed series collection (``--series``): one recorder per
        # replay, fed cumulative counters at window boundaries.  With
        # no collector armed — the default — every engine runs its
        # series-free path untouched.
        recorder = None
        if self.obs.series is not None:
            recorder = self.obs.series.recorder(
                component="replay", prefetcher=prefetcher_name,
                trace=trace.name)

        if self.engine_used == "batch":
            replay_batch(self, trace, by_trigger, result,
                         recorder=recorder)
        elif self.engine_used == "fast":
            if recorder is not None:
                replay_windowed(self, trace, by_trigger, result, recorder)
            else:
                replay_fast(self, trace, by_trigger, result)
        elif recorder is not None:
            self._run_reference_windowed(trace, by_trigger, result,
                                         recorder)
        else:
            for acc in trace:
                dispatch = self.core.dispatch_load(acc.instr_id)
                self._drain_completed_prefetches(dispatch)
                latency = self._demand_access(acc.block, dispatch, result)
                self.core.complete_load(acc.instr_id, dispatch + latency)
                for block in by_trigger.get(acc.instr_id, ()):
                    self._issue_prefetch(block, dispatch, result,
                                         trigger=acc.instr_id)
            result.cycles = self.core.finalize(trace.instruction_count)

        # Account prefetched lines that were demanded after install.
        result.pf_useful += self.llc.useful_prefetches
        result.dram_requests = self.dram.requests
        result.extra["dram_avg_wait"] = self.dram.average_wait
        result.extra["pf_unused_evicted"] = float(
            self.llc.evicted_unused_prefetches)
        if self._pf_dropped.value:
            result.extra["pf_dropped"] = float(self._pf_dropped.value)
        self._publish_metrics(trace, prefetcher_name, result)
        return result

    def _run_reference_windowed(self, trace: Trace,
                                by_trigger: Dict[int, List[int]],
                                result: SimResult, recorder) -> None:
        """The reference loop plus window-boundary series samples.

        Identical arithmetic to the un-instrumented loop in
        :meth:`run` — the only additions are an access index and a
        cumulative-counter snapshot at each window boundary, so the
        :class:`SimResult` stays bit-identical with and without
        ``--series`` (pinned by the parity suite).
        """
        window = recorder.window
        n = len(trace)
        next_boundary = min(window, n)
        i = 0
        for acc in trace:
            dispatch = self.core.dispatch_load(acc.instr_id)
            self._drain_completed_prefetches(dispatch)
            latency = self._demand_access(acc.block, dispatch, result)
            self.core.complete_load(acc.instr_id, dispatch + latency)
            for block in by_trigger.get(acc.instr_id, ()):
                self._issue_prefetch(block, dispatch, result,
                                     trigger=acc.instr_id)
            i += 1
            if i == next_boundary:
                recorder.sample(i, cumulative=dict(zip(
                    REPLAY_SERIES_NAMES,
                    (self.l1d.hits, self.l1d.misses,
                     self.l2.hits, self.l2.misses,
                     self.llc.hits, self.llc.misses,
                     self.llc.useful_prefetches,
                     result.pf_issued, result.pf_late,
                     self._pf_dropped.value,
                     self.dram.requests, self.dram.total_wait_cycles))),
                    gauges={REPLAY_QUEUE_GAUGE: self.dram.queue_len(
                        int(dispatch))})
                next_boundary = min(next_boundary + window, n)
        result.cycles = self.core.finalize(trace.instruction_count)

    def _publish_metrics(self, trace: Trace, prefetcher_name: str,
                         result: SimResult) -> None:
        """Mirror the run's counters into the registry and close events."""
        if not self.obs.enabled:
            return
        scope = self.obs.registry.scope(run=prefetcher_name,
                                        trace=trace.name)
        for cache, hits in ((self.l1d, result.l1d_hits),
                            (self.l2, result.l2_hits),
                            (self.llc, result.llc_hits)):
            level = scope.scope(level=cache.config.name)
            level.counter("cache.hits").inc(cache.hits)
            level.counter("cache.misses").inc(cache.misses)
        scope.counter("pf.issued").inc(result.pf_issued)
        scope.counter("pf.useful").inc(result.pf_useful)
        scope.counter("pf.late").inc(result.pf_late)
        scope.counter("pf.dropped").inc(self._pf_dropped.value)
        scope.counter("pf.evicted_unused").inc(
            self.llc.evicted_unused_prefetches)
        scope.counter("dram.requests").inc(self.dram.requests)
        scope.gauge("sim.ipc").set(result.ipc)
        scope.gauge("sim.cycles").set(result.cycles)
        if self._trace_events:
            self.obs.tracer.emit(
                "run.end", trace=trace.name, prefetcher=prefetcher_name,
                cycles=result.cycles, ipc=result.ipc,
                pf_issued=result.pf_issued, pf_useful=result.pf_useful,
                pf_late=result.pf_late, pf_dropped=self._pf_dropped.value,
                llc_hits=result.llc_hits, llc_misses=result.llc_misses)


def simulate(trace: Trace, prefetches: Iterable[PrefetchRequest] = (),
             config: Optional[HierarchyConfig] = None,
             prefetcher_name: str = "none",
             obs: Optional[Observability] = None,
             engine: str = "batch") -> SimResult:
    """Convenience wrapper: build a fresh :class:`Simulator` and run it."""
    return Simulator(config, obs=obs, engine=engine).run(
        trace, prefetches, prefetcher_name)
