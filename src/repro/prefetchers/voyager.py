"""Voyager (Shi et al., ASPLOS 2021) — hierarchical neural baseline.

Voyager factors address prediction hierarchically — a page prediction
and an offset prediction from shared embedded history — and localises
history by load PC.  This surrogate keeps that structure with a hybrid
page vocabulary suited to a from-scratch substrate: small page *deltas*
get their own tokens (so stride-like patterns generalise across fresh
pages the way Voyager's learned embeddings do), while large jumps to
*frequently revisited* pages are tokenised absolutely (so temporally
recurring irregular sequences — the replay behaviour SISB thrives on —
are learnable too, as they are for the real Voyager).

The paper's protocol is preserved: the model is trained *offline* on
the full trace before inference (§4.3 trains and tests Voyager on the
same trace files), giving it "the benefit of a long and precise
training process on the entire trace" (§5) — strong on irregular
benchmarks, but unable to adapt online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..ml.layers import Dense, Embedding, cross_entropy, softmax
from ..ml.lstm import LSTM
from ..ml.optim import Adam
from ..types import MemoryAccess, Trace, compose_address
from .base import Prefetcher

#: Page-delta token reserved for out-of-range jumps.
_OOV = 0


@dataclass(frozen=True)
class VoyagerConfig:
    """Voyager-surrogate knobs.

    Attributes:
        max_page_delta: Largest |page delta| with its own delta token.
        abs_page_vocab: Most-frequent absolute pages tokenised directly
            (covers temporally recurring irregular jumps).  Defaults to
            0: at this reproduction's training scale the large absolute
            softmax dilutes learning and hurts accuracy — the real
            Voyager affords it with GPU-hours of training (DESIGN.md).
        pc_vocab: Hash buckets for the PC embedding.
        embed_dim: Width of each embedding (page delta, offset, pc).
        hidden_dim: LSTM width.  [paper: much larger, GPU-trained; see
            DESIGN.md scale note.]
        window: Per-PC history length.
        epochs: Offline training epochs.
        max_train_windows: Cap on training windows per trace.
        batch_size: Training batch size.
        degree: Prefetches per access (top page-delta × top offsets).
        lr: Adam learning rate.
        seed: Parameter seed.
    """

    max_page_delta: int = 64
    abs_page_vocab: int = 0
    pc_vocab: int = 256
    embed_dim: int = 16
    hidden_dim: int = 48
    window: int = 8
    epochs: int = 2
    max_train_windows: int = 12000
    batch_size: int = 64
    degree: int = 2
    lr: float = 3e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_page_delta < 1 or self.pc_vocab < 1:
            raise ConfigError("vocabulary sizes out of range")
        if self.window < 1 or self.degree < 1:
            raise ConfigError("window and degree must be >= 1")

    @property
    def n_delta_tokens(self) -> int:
        """Delta-token count (symmetric range + OOV at index 0)."""
        return 2 * self.max_page_delta + 2

    @property
    def page_vocab(self) -> int:
        """Total page tokens: OOV + deltas + absolute frequent pages."""
        return self.n_delta_tokens + self.abs_page_vocab


class VoyagerPrefetcher(Prefetcher):
    """Hierarchical page-delta/offset LSTM prefetcher (offline-trained)."""

    name = "voyager"

    def __init__(self, config: Optional[VoyagerConfig] = None):
        self.config = config or VoyagerConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.page_embed = Embedding(cfg.page_vocab, cfg.embed_dim, rng)
        self.offset_embed = Embedding(64, cfg.embed_dim, rng)
        self.pc_embed = Embedding(cfg.pc_vocab, cfg.embed_dim, rng)
        self.lstm = LSTM(3 * cfg.embed_dim, cfg.hidden_dim, rng)
        self.page_head = Dense(cfg.hidden_dim, cfg.page_vocab, rng)
        self.offset_head = Dense(cfg.hidden_dim, 64, rng)
        self.optimizer = Adam(
            [self.page_embed, self.offset_embed, self.pc_embed,
             self.lstm, self.page_head, self.offset_head], lr=cfg.lr)
        self.trained = False
        # Hybrid absolute-page vocabulary (built during training).
        self.page_to_token: Dict[int, int] = {}
        self.token_to_page: Dict[int, int] = {}
        # Per-PC inference state: token history and last page.
        self._history: Dict[int, List[np.ndarray]] = {}
        self._last_page: Dict[int, int] = {}
        self._batch_tokens: Optional[np.ndarray] = None

    # -- tokenisation ------------------------------------------------------

    def _page_token(self, delta: int, page: int) -> int:
        """Hybrid tokenisation: delta token if small, else absolute."""
        if abs(delta) <= self.config.max_page_delta:
            return delta + self.config.max_page_delta + 1
        absolute = self.page_to_token.get(page)
        if absolute is not None:
            return absolute
        return _OOV

    def _decode_page(self, token: int, current_page: int) -> Optional[int]:
        """Invert :meth:`_page_token`; None for OOV."""
        if token == _OOV:
            return None
        if token < self.config.n_delta_tokens:
            return current_page + (token - self.config.max_page_delta - 1)
        return self.token_to_page.get(token)

    def _build_abs_vocab(self, trace: Trace) -> None:
        pages, counts = np.unique([a.page for a in trace],
                                  return_counts=True)
        # Only pages visited repeatedly earn an absolute token.
        recurring = pages[counts >= 2]
        order = np.argsort(-counts[counts >= 2])
        if self.config.abs_page_vocab <= 0:
            return
        kept = recurring[order][:self.config.abs_page_vocab]
        base = self.config.n_delta_tokens
        for index, page in enumerate(kept):
            self.page_to_token[int(page)] = base + index
            self.token_to_page[base + index] = int(page)

    def _pc_token(self, pc: int) -> int:
        return (pc >> 2) % self.config.pc_vocab

    # -- model passes ------------------------------------------------------

    def _forward(self, batch_tokens: np.ndarray) -> Tuple:
        """batch_tokens (B, T, 3) → (hidden seq, page logits, offset logits)."""
        self._batch_tokens = batch_tokens
        pages = self.page_embed.forward(batch_tokens[:, :, 0])
        offsets = self.offset_embed.forward(batch_tokens[:, :, 1])
        pcs = self.pc_embed.forward(batch_tokens[:, :, 2])
        joined = np.concatenate([pages, offsets, pcs], axis=2)
        hidden = self.lstm.forward(joined)
        final = hidden[:, -1, :]
        return (hidden, self.page_head.forward(final),
                self.offset_head.forward(final))

    def _backward(self, hidden: np.ndarray, dpage: np.ndarray,
                  doffset: np.ndarray) -> None:
        assert self._batch_tokens is not None
        dfinal = self.page_head.backward(dpage)
        dfinal = dfinal + self.offset_head.backward(doffset)
        grad_h = np.zeros_like(hidden)
        grad_h[:, -1, :] = dfinal
        djoined = self.lstm.backward(grad_h)
        e = self.config.embed_dim
        # Re-pin each embedding's last-forward indices before splitting
        # the joined gradient back out (forward order: page, offset, pc).
        self.page_embed._last_indices = self._batch_tokens[:, :, 0]
        self.offset_embed._last_indices = self._batch_tokens[:, :, 1]
        self.pc_embed._last_indices = self._batch_tokens[:, :, 2]
        self.page_embed.backward(djoined[:, :, :e])
        self.offset_embed.backward(djoined[:, :, e:2 * e])
        self.pc_embed.backward(djoined[:, :, 2 * e:])

    # -- offline training ------------------------------------------------------

    def _stream_tokens(self, trace: Trace) -> Dict[int, np.ndarray]:
        """Per-PC token sequences: rows of (page_tok, offset, pc_tok)."""
        streams: Dict[int, List[List[int]]] = {}
        last_page: Dict[int, int] = {}
        for access in trace:
            rows = streams.setdefault(access.pc, [])
            prev = last_page.get(access.pc)
            delta = 0 if prev is None else access.page - prev
            last_page[access.pc] = access.page
            rows.append([self._page_token(delta, access.page),
                         access.offset, self._pc_token(access.pc)])
        return {pc: np.asarray(rows, dtype=int)
                for pc, rows in streams.items() if len(rows) > 1}

    def train(self, trace: Trace) -> None:
        cfg = self.config
        self._build_abs_vocab(trace)
        streams = self._stream_tokens(trace)
        contexts: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for tokens in streams.values():
            for start in range(tokens.shape[0] - cfg.window):
                contexts.append(tokens[start:start + cfg.window])
                targets.append(tokens[start + cfg.window])
        if not contexts:
            return
        contexts_arr = np.stack(contexts)
        targets_arr = np.stack(targets)
        if contexts_arr.shape[0] > cfg.max_train_windows:
            stride = contexts_arr.shape[0] / cfg.max_train_windows
            keep = (np.arange(cfg.max_train_windows) * stride).astype(int)
            contexts_arr = contexts_arr[keep]
            targets_arr = targets_arr[keep]
        rng = np.random.default_rng(cfg.seed)
        for _ in range(cfg.epochs):
            order = rng.permutation(contexts_arr.shape[0])
            for start in range(0, order.size, cfg.batch_size):
                batch = order[start:start + cfg.batch_size]
                self._train_batch(contexts_arr[batch], targets_arr[batch])
        self.trained = True

    def _train_batch(self, contexts: np.ndarray,
                     targets: np.ndarray) -> float:
        self.optimizer.zero_grad()
        hidden, page_logits, offset_logits = self._forward(contexts)
        page_probs = softmax(page_logits)
        offset_probs = softmax(offset_logits)
        loss = (cross_entropy(page_probs, targets[:, 0])
                + cross_entropy(offset_probs, targets[:, 1]))
        batch = targets.shape[0]
        dpage = page_probs.copy()
        dpage[np.arange(batch), targets[:, 0]] -= 1.0
        dpage /= batch
        doffset = offset_probs.copy()
        doffset[np.arange(batch), targets[:, 1]] -= 1.0
        doffset /= batch
        self._backward(hidden, dpage, doffset)
        self.optimizer.step()
        return loss

    # -- inference ----------------------------------------------------------

    def process(self, access: MemoryAccess) -> List[int]:
        cfg = self.config
        if not self.trained:
            return []
        prev = self._last_page.get(access.pc)
        delta = 0 if prev is None else access.page - prev
        self._last_page[access.pc] = access.page
        history = self._history.setdefault(access.pc, [])
        history.append(np.asarray(
            [self._page_token(delta, access.page), access.offset,
             self._pc_token(access.pc)], dtype=int))
        if len(history) > cfg.window:
            del history[:-cfg.window]
        if len(history) < cfg.window:
            return []
        contexts = np.stack(history)[None, :, :]
        _, page_logits, offset_logits = self._forward(contexts)
        page = self._decode_page(int(np.argmax(page_logits[0])),
                                 access.page)
        if page is None or page < 0:
            return []
        offset_order = np.argsort(-offset_logits[0])
        return [compose_address(page, int(o))
                for o in offset_order[:cfg.degree]]

    def reset(self) -> None:
        self._history.clear()
        self._last_page.clear()
