"""Cold-page predictor (the paper's flagged future work, §3.4).

PATHFINDER only predicts the next block *within* a page, so the first
access to a page that hasn't been touched in a while is never covered
— the paper calls predicting it "left for future work".  This module
implements that extension as a composable prefetcher: a per-PC
page-transition table learns which page (as a page delta) and which
first offset tend to follow the current page, and prefetches that
first block when a stream changes page.

Combine it with PATHFINDER in an ensemble to cover both the first
access to each page and the accesses within it::

    EnsemblePrefetcher([PathfinderPrefetcher(), ColdPagePredictor()])
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..types import MemoryAccess, compose_address
from .base import Prefetcher


@dataclass(frozen=True)
class ColdPageConfig:
    """Cold-page predictor knobs.

    Attributes:
        table_size: Tracked (pc, page-delta) transition rows (LRU).
        max_page_delta: Largest |page delta| learned; larger jumps are
            treated as unpredictable.
        confidence_max: Saturation of each row's confidence counter.
        confidence_threshold: Minimum confidence to prefetch.
        degree: Blocks prefetched at the predicted page's start.
    """

    table_size: int = 512
    max_page_delta: int = 64
    confidence_max: int = 7
    confidence_threshold: int = 2
    degree: int = 1

    def __post_init__(self) -> None:
        if self.table_size < 1 or self.degree < 1:
            raise ConfigError("table_size and degree must be >= 1")
        if not 0 <= self.confidence_threshold <= self.confidence_max:
            raise ConfigError("confidence_threshold outside counter range")


class _Transition:
    """Learned (page delta, first offset) with confidence."""

    __slots__ = ("page_delta", "first_offset", "confidence")

    def __init__(self, page_delta: int, first_offset: int):
        self.page_delta = page_delta
        self.first_offset = first_offset
        self.confidence = 1


class ColdPagePredictor(Prefetcher):
    """Predicts each stream's next page and its first touched block."""

    name = "coldpage"

    def __init__(self, config: Optional[ColdPageConfig] = None):
        self.config = config or ColdPageConfig()
        # pc -> (current page, first offset seen in it)
        self._current: Dict[int, Tuple[int, int]] = {}
        # pc -> learned transition (LRU-bounded overall)
        self._transitions: "OrderedDict[int, _Transition]" = OrderedDict()
        self.predictions = 0

    def _learn(self, pc: int, page_delta: int, first_offset: int) -> None:
        cfg = self.config
        if abs(page_delta) > cfg.max_page_delta:
            self._transitions.pop(pc, None)
            return
        row = self._transitions.get(pc)
        if row is not None and (row.page_delta == page_delta
                                and row.first_offset == first_offset):
            row.confidence = min(cfg.confidence_max, row.confidence + 1)
            self._transitions.move_to_end(pc)
            return
        if row is not None:
            row.confidence -= 1
            if row.confidence > 0:
                self._transitions.move_to_end(pc)
                return
        if len(self._transitions) >= cfg.table_size and pc not in self._transitions:
            self._transitions.popitem(last=False)
        self._transitions[pc] = _Transition(page_delta, first_offset)

    def process(self, access: MemoryAccess) -> List[int]:
        cfg = self.config
        current = self._current.get(access.pc)
        if current is not None and current[0] == access.page:
            return []  # still inside the page: PATHFINDER's territory

        if current is not None:
            self._learn(access.pc, access.page - current[0], access.offset)
        self._current[access.pc] = (access.page, access.offset)

        row = self._transitions.get(access.pc)
        if row is None or row.confidence < cfg.confidence_threshold:
            return []
        next_page = access.page + row.page_delta
        if next_page < 0:
            return []
        self.predictions += 1
        addresses = []
        for step in range(cfg.degree):
            offset = row.first_offset + step
            if offset < 64:
                addresses.append(compose_address(next_page, offset))
        return addresses

    def reset(self) -> None:
        self._current.clear()
        self._transitions.clear()
        self.predictions = 0
