"""Pythia (Bera et al., MICRO 2021) — RL delta prefetcher baseline.

A tabular reinforcement-learning prefetcher built the way Pythia is:
program *features* are hashed into per-feature Q-value *vaults* whose
values are summed to score each action; the *actions* are candidate
prefetch deltas (including "no prefetch"); and rewards are assigned by
an Evaluation Queue that observes whether issued prefetches were later
demanded.  Q-values are updated SARSA-style across every vault.  The
default feature set is Pythia's best-performing pair: (PC ⊕ last
delta) and the recent delta-sequence signature.

The implementation reproduces the behavioural signature the paper
reports for Pythia at the LLC: it is *aggressive* (issues on nearly
every access — highest issue counts in Table 6), its epsilon-greedy
exploration wastes some bandwidth on hard-to-predict patterns, and it
can settle into a local minimum such as always-delta-1 on xalan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..types import BLOCKS_PER_PAGE, MemoryAccess, compose_address
from .base import Prefetcher


def _default_actions() -> Tuple[int, ...]:
    """Pythia's delta action list (positive and negative deltas + none)."""
    return (0, 1, -1, 2, -2, 3, -3, 4, -4, 6, -6, 8, -8, 16, -16, 32)


@dataclass(frozen=True)
class PythiaConfig:
    """RL hyper-parameters and structure sizes.

    Attributes:
        actions: Candidate prefetch deltas; 0 = no prefetch.
        alpha: SARSA learning rate.  [Pythia's hardware default is
            0.0065 over billions of accesses; scaled up for the
            shorter traces used here — the paper itself tuned
            alpha/gamma/epsilon per LLC configuration (§4.3).]
        gamma: Discount factor (Pythia default 0.55).
        epsilon: Exploration probability.
        reward_accurate: Reward for a prefetch later demanded.
        reward_inaccurate: Reward for a prefetch evicted unused.
        reward_no_prefetch: Reward for choosing not to prefetch (small
            positive: saves bandwidth when nothing is predictable).
        eq_size: Evaluation-queue capacity.
        degree: Prefetches issued per access (paper budget: 2).
        use_delta_sequence_vault: Enable the second feature vault
            (signature of the last two in-page deltas), as in Pythia's
            two-feature configuration; disabling it leaves the single
            (PC ⊕ delta) vault.
        seed: RNG seed for exploration.
    """

    actions: Tuple[int, ...] = field(default_factory=_default_actions)
    alpha: float = 0.15
    gamma: float = 0.55
    epsilon: float = 0.05
    reward_accurate: float = 20.0
    reward_inaccurate: float = -8.0
    reward_no_prefetch: float = 2.0
    eq_size: int = 256
    degree: int = 2
    use_delta_sequence_vault: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if 0 not in self.actions:
            raise ConfigError("action list must include 0 (no prefetch)")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigError("gamma must be in [0, 1)")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError("epsilon must be in [0, 1]")
        if self.degree < 1 or self.eq_size < 1:
            raise ConfigError("degree and eq_size must be >= 1")


class _EQEntry:
    """A pending prefetch awaiting its reward."""

    __slots__ = ("state", "action", "block", "resolved")

    def __init__(self, state: Tuple[int, ...], action: int, block: int):
        self.state = state
        self.action = action
        self.block = block
        self.resolved = False


class PythiaPrefetcher(Prefetcher):
    """Tabular SARSA delta prefetcher with an evaluation queue."""

    name = "pythia"

    def __init__(self, config: Optional[PythiaConfig] = None):
        self.config = config or PythiaConfig()
        self._rng = np.random.default_rng(self.config.seed)
        # One Q-table ("vault") per program feature; action values are
        # summed across vaults, exactly as Pythia's QVStore does.
        self._vaults: List[Dict[Tuple[int, int], float]] = [{}]
        if self.config.use_delta_sequence_vault:
            self._vaults.append({})
        self._eq: Deque[_EQEntry] = deque()
        self._eq_by_block: Dict[int, List[_EQEntry]] = {}
        # page -> last offset (for delta features)
        self._last_offset: Dict[int, int] = {}
        self._last_delta: Dict[int, int] = {}
        self._prev_delta: Dict[int, int] = {}
        self.rewards_assigned = 0

    # -- feature / Q helpers ---------------------------------------------------

    def _features_of(self, pc: int, last_delta: int,
                     prev_delta: int) -> Tuple[int, ...]:
        """One hashed feature index per vault."""
        pc_delta = ((pc & 0xFFF) << 7) ^ (last_delta & 0x7F)
        if not self.config.use_delta_sequence_vault:
            return (pc_delta,)
        sequence = ((last_delta & 0x7F) << 7) ^ (prev_delta & 0x7F)
        return (pc_delta, sequence)

    def _q_value(self, state: Tuple[int, ...], action: int) -> float:
        return sum(vault.get((feature, action), 0.0)
                   for vault, feature in zip(self._vaults, state))

    def _best_q(self, state: Tuple[int, ...]) -> float:
        return max(self._q_value(state, a) for a in self.config.actions)

    def _update(self, state: Tuple[int, ...], action: int, reward: float,
                next_state: Optional[Tuple[int, ...]]) -> None:
        cfg = self.config
        old = self._q_value(state, action)
        bootstrap = (cfg.gamma * self._best_q(next_state)
                     if next_state is not None else 0.0)
        step = cfg.alpha * (reward + bootstrap - old) / len(self._vaults)
        for vault, feature in zip(self._vaults, state):
            vault[(feature, action)] = vault.get((feature, action), 0.0) + step
        self.rewards_assigned += 1

    # -- evaluation queue ---------------------------------------------------

    def _enqueue(self, entry: _EQEntry) -> None:
        self._eq.append(entry)
        self._eq_by_block.setdefault(entry.block, []).append(entry)
        while len(self._eq) > self.config.eq_size:
            evicted = self._eq.popleft()
            bucket = self._eq_by_block.get(evicted.block)
            if bucket and evicted in bucket:
                bucket.remove(evicted)
                if not bucket:
                    del self._eq_by_block[evicted.block]
            if not evicted.resolved:
                self._update(evicted.state, evicted.action,
                             self.config.reward_inaccurate, None)

    def _resolve_hits(self, block: int,
                      next_state: Tuple[int, ...]) -> None:
        for entry in self._eq_by_block.pop(block, []):
            if not entry.resolved:
                entry.resolved = True
                self._update(entry.state, entry.action,
                             self.config.reward_accurate, next_state)

    # -- per-access -----------------------------------------------------------

    def process(self, access: MemoryAccess) -> List[int]:
        cfg = self.config
        page, offset = access.page, access.offset
        previous_offset = self._last_offset.get(page)
        delta = 0
        if previous_offset is not None:
            delta = offset - previous_offset
        self._last_offset[page] = offset
        last_delta = self._last_delta.get(page, 0)
        prev_delta = self._prev_delta.get(page, 0)
        if delta != 0:
            self._prev_delta[page] = last_delta
            self._last_delta[page] = delta

        state = self._features_of(access.pc,
                                  delta if delta != 0 else last_delta,
                                  prev_delta)
        self._resolve_hits(access.block, state)

        # Epsilon-greedy multi-action selection, best Q first.
        if self._rng.random() < cfg.epsilon:
            chosen = list(self._rng.choice(cfg.actions, size=cfg.degree,
                                           replace=False))
        else:
            ranked = sorted(cfg.actions,
                            key=lambda a: self._q_value(state, a),
                            reverse=True)
            chosen = ranked[:cfg.degree]

        addresses: List[int] = []
        for action in chosen:
            action = int(action)
            if action == 0:
                self._update(state, 0, cfg.reward_no_prefetch, None)
                continue
            target = offset + action
            if not 0 <= target < BLOCKS_PER_PAGE:
                continue
            address = compose_address(page, target)
            self._enqueue(_EQEntry(state, action, address >> 6))
            addresses.append(address)
        return addresses

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.config.seed)
        for vault in self._vaults:
            vault.clear()
        self._eq.clear()
        self._eq_by_block.clear()
        self._last_offset.clear()
        self._last_delta.clear()
        self._prev_delta.clear()
        self.rewards_assigned = 0
