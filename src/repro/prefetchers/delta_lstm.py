"""Delta-LSTM (Hashemi et al., ICML 2018) — offline neural baseline.

The clustering variant from the paper: addresses are k-means-clustered
into 6 locality regions; within each cluster, consecutive block deltas
form a token sequence over a bounded vocabulary of the cluster's most
common deltas; a 2-layer LSTM per cluster is trained to predict the
next delta.  Following the evaluated protocol (paper §4.3), training
uses only the *initial fraction* (10%) of each cluster's accesses,
while inference runs over the full trace — which is exactly why the
paper finds Delta-LSTM uncompetitive: deltas unseen during the early
window cannot be predicted later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from ..ml.cluster import assign_1d, kmeans_1d
from ..ml.model import NextTokenLSTM
from ..types import MemoryAccess, Trace
from .base import Prefetcher


@dataclass(frozen=True)
class DeltaLSTMConfig:
    """Delta-LSTM knobs.

    Attributes:
        clusters: Address clusters (paper: 6).
        vocab_size: Most-common deltas kept per cluster (others map to
            an out-of-vocabulary token that never prefetches).
        train_fraction: Leading fraction of each cluster used for
            training (paper protocol: 0.10).
        embed_dim / hidden_dim / layers / window: Model shape.  [The
            paper uses 2×128 hidden; scaled down for CPU training —
            the protocol-driven weakness being reproduced does not
            depend on width.]
        epochs: Training epochs over the training windows.
        max_train_windows: Cap on training windows per cluster.
        degree: Prefetches per access.
        lr: Adam learning rate.
        seed: Seed for clustering and model init.
    """

    clusters: int = 6
    vocab_size: int = 65
    train_fraction: float = 0.10
    embed_dim: int = 16
    hidden_dim: int = 32
    layers: int = 2
    window: int = 8
    epochs: int = 3
    max_train_windows: int = 4000
    degree: int = 2
    lr: float = 3e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.train_fraction <= 1.0:
            raise ConfigError("train_fraction must be in (0, 1]")
        if self.clusters < 1 or self.vocab_size < 2 or self.degree < 1:
            raise ConfigError("clusters/vocab/degree out of range")


#: Token 0 is reserved for out-of-vocabulary deltas.
_OOV = 0


class _ClusterModel:
    """Per-cluster vocabulary + LSTM."""

    def __init__(self) -> None:
        self.delta_to_token: Dict[int, int] = {}
        self.token_to_delta: Dict[int, int] = {}
        self.model: Optional[NextTokenLSTM] = None
        self.context: List[int] = []
        self.last_block: Optional[int] = None


class DeltaLSTMPrefetcher(Prefetcher):
    """Clustered next-delta LSTM prefetcher (train-then-infer)."""

    name = "delta-lstm"

    def __init__(self, config: Optional[DeltaLSTMConfig] = None):
        self.config = config or DeltaLSTMConfig()
        self.centroids: Optional[np.ndarray] = None
        self._clusters: List[_ClusterModel] = []
        self.unseen_delta_predictions = 0

    # -- offline training ------------------------------------------------------

    def train(self, trace: Trace) -> None:
        cfg = self.config
        blocks = np.asarray([acc.block for acc in trace], dtype=float)
        self.centroids, labels = kmeans_1d(blocks, cfg.clusters,
                                           seed=cfg.seed)
        self._clusters = [_ClusterModel()
                          for _ in range(len(self.centroids))]
        for cluster_id, cluster in enumerate(self._clusters):
            member_blocks = blocks[labels == cluster_id].astype(int)
            deltas = np.diff(member_blocks)
            deltas = deltas[deltas != 0]
            if deltas.size < cfg.window + 2:
                continue
            train_len = max(cfg.window + 2,
                            int(deltas.size * cfg.train_fraction))
            train_deltas = deltas[:train_len]
            self._build_vocab(cluster, train_deltas)
            tokens = np.asarray(
                [cluster.delta_to_token.get(int(d), _OOV)
                 for d in train_deltas], dtype=int)
            cluster.model = NextTokenLSTM(
                vocab_size=cfg.vocab_size,
                embed_dim=cfg.embed_dim,
                hidden_dim=cfg.hidden_dim,
                layers=cfg.layers,
                window=cfg.window,
                lr=cfg.lr,
                seed=cfg.seed + cluster_id)
            cluster.model.fit(tokens, epochs=cfg.epochs,
                              max_windows=cfg.max_train_windows,
                              seed=cfg.seed + cluster_id)

    def _build_vocab(self, cluster: _ClusterModel,
                     deltas: np.ndarray) -> None:
        values, counts = np.unique(deltas, return_counts=True)
        order = np.argsort(-counts)
        kept = values[order][:self.config.vocab_size - 1]
        for token, delta in enumerate(kept, start=1):
            cluster.delta_to_token[int(delta)] = token
            cluster.token_to_delta[token] = int(delta)

    # -- inference ----------------------------------------------------------

    def process(self, access: MemoryAccess) -> List[int]:
        cfg = self.config
        if self.centroids is None:
            return []
        cluster_id = int(assign_1d(np.asarray([access.block]),
                                   self.centroids)[0])
        cluster = self._clusters[cluster_id]
        if cluster.model is None:
            return []

        block = access.block
        if cluster.last_block is not None and block != cluster.last_block:
            delta = block - cluster.last_block
            token = cluster.delta_to_token.get(delta, _OOV)
            if token == _OOV:
                self.unseen_delta_predictions += 1
            cluster.context.append(token)
            if len(cluster.context) > cfg.window:
                cluster.context = cluster.context[-cfg.window:]
        cluster.last_block = block

        if len(cluster.context) < cfg.window:
            return []
        addresses: List[int] = []
        for token in cluster.model.predict_topk(cluster.context,
                                                k=cfg.degree + 1):
            delta = cluster.token_to_delta.get(token)
            if delta is None:  # OOV token predicts nothing
                continue
            target = block + delta
            if target > 0:
                addresses.append(target << 6)
            if len(addresses) >= cfg.degree:
                break
        return addresses

    def reset(self) -> None:
        for cluster in self._clusters:
            cluster.context = []
            cluster.last_block = None
