"""Best-Offset prefetcher (Michaud, HPCA 2016) — rule-based baseline.

BO learns a single best prefetch *offset* by scoring candidate offsets
against a Recent Requests table: when a demand access to line X arrives
and line ``X - o`` was recently requested, offset ``o`` scores a point,
because a prefetch at offset ``o`` triggered by that earlier access
would have been timely.  Offsets are evaluated round-robin; a learning
phase ends when an offset reaches ``score_max`` or ``max_rounds``
rounds elapse, and the best-scoring offset becomes the active one.

The ML-DPC competition version the paper uses has prefetch throttling
disabled, so this implementation always prefetches with the current
best offset (no accuracy gate), matching that provider's setting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..types import MemoryAccess
from .base import Prefetcher


def _default_offsets() -> Tuple[int, ...]:
    """Michaud's offset list: numbers whose prime factors are ≤ 5."""
    offsets = [n for n in range(1, 65) if _smooth(n)]
    return tuple(offsets + [-n for n in offsets])


def _smooth(n: int) -> bool:
    for p in (2, 3, 5):
        while n % p == 0:
            n //= p
    return n == 1


@dataclass(frozen=True)
class BestOffsetConfig:
    """BO knobs (defaults follow the DPC2 submission).

    Attributes:
        offsets: Candidate offset list.
        score_max: Score that immediately wins a learning phase.
        max_rounds: Learning-phase length bound, in full list passes.
        recent_requests_size: Entries in the Recent Requests table.
        degree: Lines prefetched per access.  Michaud's BO issues a
            single prefetch at X + D by design (DPC2 submission), so
            the default is 1 even though the evaluation budget is 2.
    """

    offsets: Tuple[int, ...] = field(default_factory=_default_offsets)
    score_max: int = 31
    max_rounds: int = 100
    recent_requests_size: int = 256
    degree: int = 1

    def __post_init__(self) -> None:
        if not self.offsets:
            raise ConfigError("offset list must be non-empty")
        if self.degree < 1:
            raise ConfigError("degree must be >= 1")


class BestOffsetPrefetcher(Prefetcher):
    """Offset prefetcher with round-robin offset scoring."""

    name = "bo"

    def __init__(self, config: Optional[BestOffsetConfig] = None):
        self.config = config or BestOffsetConfig()
        self.best_offset = 1
        self._scores = {o: 0 for o in self.config.offsets}
        self._candidate_index = 0
        self._round = 0
        # Recent Requests as an LRU set of block numbers.
        self._recent: "OrderedDict[int, None]" = OrderedDict()

    # -- learning ------------------------------------------------------------

    def _remember(self, block: int) -> None:
        self._recent[block] = None
        self._recent.move_to_end(block)
        if len(self._recent) > self.config.recent_requests_size:
            self._recent.popitem(last=False)

    def _test_candidate(self, block: int) -> None:
        cfg = self.config
        offset = cfg.offsets[self._candidate_index]
        if (block - offset) in self._recent:
            self._scores[offset] += 1
            if self._scores[offset] >= cfg.score_max:
                self._finish_phase()
                return
        self._candidate_index += 1
        if self._candidate_index >= len(cfg.offsets):
            self._candidate_index = 0
            self._round += 1
            if self._round >= cfg.max_rounds:
                self._finish_phase()

    def _finish_phase(self) -> None:
        self.best_offset = max(self._scores, key=self._scores.get)
        self._scores = {o: 0 for o in self.config.offsets}
        self._candidate_index = 0
        self._round = 0

    # -- per-access ------------------------------------------------------------

    def process(self, access: MemoryAccess) -> List[int]:
        block = access.block
        self._test_candidate(block)
        self._remember(block)
        addresses = []
        for i in range(1, self.config.degree + 1):
            target = block + self.best_offset * i
            if target > 0:
                addresses.append(target << 6)
        return addresses

    def process_batch(self, addresses, pcs, instr_ids) -> List[List[int]]:
        """Chunked form: columnar block math, then a hoisted-local walk.

        The learning automaton is inherently sequential (each access
        can flip ``best_offset`` for the next one), so the chunk win
        comes from one vectorized block extraction and keeping the
        tables/counters in locals instead of attribute lookups.
        Mirrors :meth:`process` exactly, including the phase-finish
        ordering of :meth:`_test_candidate`.
        """
        import numpy as np

        cfg = self.config
        offsets = cfg.offsets
        last_index = len(offsets) - 1
        score_max = cfg.score_max
        max_rounds = cfg.max_rounds
        rr_size = cfg.recent_requests_size
        degree = cfg.degree
        recent = self._recent
        recent_move = recent.move_to_end
        recent_pop = recent.popitem
        scores = self._scores
        index = self._candidate_index
        rnd = self._round
        best = self.best_offset
        results: List[List[int]] = []
        append = results.append
        for block in (np.asarray(addresses) >> 6).tolist():
            offset = offsets[index]
            finished = False
            if (block - offset) in recent:
                score = scores[offset] + 1
                scores[offset] = score
                if score >= score_max:
                    finished = True
            if not finished:
                if index == last_index:
                    index = 0
                    rnd += 1
                    if rnd >= max_rounds:
                        finished = True
                else:
                    index += 1
            if finished:
                best = max(scores, key=scores.get)
                scores = dict.fromkeys(offsets, 0)
                index = 0
                rnd = 0
            recent[block] = None
            recent_move(block)
            if len(recent) > rr_size:
                recent_pop(last=False)
            addrs: List[int] = []
            for i in range(1, degree + 1):
                target = block + best * i
                if target > 0:
                    addrs.append(target << 6)
            append(addrs)
        self._scores = scores
        self._candidate_index = index
        self._round = rnd
        self.best_offset = best
        return results

    def reset(self) -> None:
        self.best_offset = 1
        self._scores = {o: 0 for o in self.config.offsets}
        self._candidate_index = 0
        self._round = 0
        self._recent.clear()
