"""Next-line prefetcher: the simplest strided baseline (paper §2.1)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError
from ..types import BLOCK_SIZE, MemoryAccess, block_address
from .base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential cache blocks."""

    name = "nextline"

    def __init__(self, degree: int = 1):
        if degree < 1:
            raise ConfigError("degree must be >= 1")
        self.degree = degree

    def process(self, access: MemoryAccess) -> List[int]:
        base = block_address(access.address)
        return [base + BLOCK_SIZE * i for i in range(1, self.degree + 1)]

    def process_batch(self, addresses, pcs, instr_ids) -> List[List[int]]:
        # Stateless, so the whole chunk is one broadcast: an
        # (n, degree) matrix of block-aligned successors.
        bases = (np.asarray(addresses) >> 6) << 6
        steps = np.arange(1, self.degree + 1, dtype=bases.dtype) * BLOCK_SIZE
        return (bases[:, None] + steps[None, :]).tolist()
