"""Dynamic-priority ensemble (the paper's flagged future work, §5).

The paper's fixed-priority ensemble (PATHFINDER > NL > SISB) sometimes
trails SISB-only on temporally-dominated benchmarks because PATHFINDER
always gets first claim on the 2-slot budget.  The paper notes "it is
possible to get larger benefits with dynamic ensemble priority
policies" — this module implements one.

Each member's recent *usefulness* is tracked with a scoreboard: every
prefetch a member wins a slot for is remembered (bounded window), and
when a later demand access hits a remembered block, the owning member
is credited.  Members are re-ranked by their exponentially-decayed
hit rate, so whichever prefetcher is currently working on this phase
of this workload gets budget priority.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence

from ..errors import ConfigError
from ..types import MemoryAccess, Trace
from .base import Prefetcher


class AdaptiveEnsemblePrefetcher(Prefetcher):
    """Usefulness-ranked combination of prefetchers.

    Args:
        members: The member prefetchers (initial priority = given order).
        budget: Prefetch slots per access (paper: 2).
        window: How many outstanding slot-winning prefetches to remember
            per member while waiting for a demand hit.
        decay: Per-access exponential decay of each member's score, so
            priority follows the current program phase.
        credit: Score added when a member's prefetch is demanded.
    """

    name = "adaptive-ensemble"

    def __init__(self, members: Sequence[Prefetcher], budget: int = 2,
                 window: int = 512, decay: float = 0.999,
                 credit: float = 1.0):
        if not members:
            raise ConfigError("ensemble needs at least one member")
        if budget < 1 or window < 1:
            raise ConfigError("budget and window must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ConfigError("decay must be in (0, 1]")
        self.members = list(members)
        self.budget = budget
        self.window = window
        self.decay = decay
        self.credit = credit
        self.name = "adaptive(" + "+".join(m.name for m in members) + ")"
        self.scores = [0.0] * len(self.members)
        #: block -> member index, bounded FIFO of outstanding prefetches.
        self._pending: "OrderedDict[int, int]" = OrderedDict()
        self.slots_used = [0] * len(self.members)
        self.credits = [0] * len(self.members)

    def attach_observability(self, obs) -> None:
        for member in self.members:
            member.attach_observability(obs)

    def publish_telemetry(self) -> None:
        for member in self.members:
            member.publish_telemetry()

    def train(self, trace: Trace) -> None:
        for member in self.members:
            member.train(trace)

    def _credit_hit(self, block: int) -> None:
        owner = self._pending.pop(block, None)
        if owner is not None:
            self.scores[owner] += self.credit
            self.credits[owner] += 1

    def _remember(self, block: int, owner: int) -> None:
        self._pending[block] = owner
        self._pending.move_to_end(block)
        while len(self._pending) > self.window:
            self._pending.popitem(last=False)

    def priority_order(self) -> List[int]:
        """Member indices, best current score first (stable on ties)."""
        return sorted(range(len(self.members)),
                      key=lambda i: -self.scores[i])

    def process(self, access: MemoryAccess) -> List[int]:
        self._credit_hit(access.block)
        for i in range(len(self.scores)):
            self.scores[i] *= self.decay

        # Every member observes every access so its tables stay warm.
        candidates = [member.process(access) for member in self.members]

        chosen: List[int] = []
        seen_blocks = set()
        for index in self.priority_order():
            for address in candidates[index]:
                block = address >> 6
                if block in seen_blocks:
                    continue
                if len(chosen) < self.budget:
                    chosen.append(address)
                    seen_blocks.add(block)
                    self.slots_used[index] += 1
                    self._remember(block, index)
        return chosen

    def reset(self) -> None:
        for member in self.members:
            member.reset()
        self.scores = [0.0] * len(self.members)
        self._pending.clear()
        self.slots_used = [0] * len(self.members)
        self.credits = [0] * len(self.members)
