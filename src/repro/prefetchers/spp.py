"""Signature Path Prefetcher (Kim et al., MICRO 2016) — history-based
delta baseline with confidence-throttled lookahead.

SPP compresses each page's recent delta history into a 12-bit
*signature*; a Signature Table maps (page → signature, last offset) and
a Pattern Table maps signature → per-delta occurrence counters.  On an
access, SPP walks a speculative *path*: it predicts the most likely
delta for the current signature, multiplies path confidence by that
delta's hit ratio, advances the signature as if the delta happened, and
repeats while confidence stays above the prefetch threshold.  This
adaptive depth is what gives SPP the paper's observed profile: the
highest accuracy of all baselines, but the lowest coverage (Table 6 —
it issues far fewer prefetches).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError
from ..types import BLOCKS_PER_PAGE, MemoryAccess, compose_address
from .base import Prefetcher

_SIGNATURE_BITS = 12
_SIGNATURE_MASK = (1 << _SIGNATURE_BITS) - 1


def advance_signature(signature: int, delta: int) -> int:
    """SPP's signature update: shift-and-xor with the new delta."""
    return ((signature << 3) ^ (delta & 0x3F)) & _SIGNATURE_MASK


@dataclass(frozen=True)
class SPPConfig:
    """SPP knobs (defaults follow the MICRO'16 paper's shape).

    Attributes:
        signature_table_size: Tracked pages (LRU).
        pattern_table_size: Distinct signatures tracked (LRU).
        max_counter: Saturation of the per-delta occurrence counters.
        prefetch_threshold: Minimum path confidence to issue.
        max_degree: Hard cap on prefetches per access (paper budget: 2).
        lookahead_depth: Maximum speculative path length.
    """

    signature_table_size: int = 256
    pattern_table_size: int = 512
    max_counter: int = 15
    prefetch_threshold: float = 0.25
    max_degree: int = 2
    lookahead_depth: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.prefetch_threshold <= 1.0:
            raise ConfigError("prefetch_threshold must be in (0, 1]")
        if self.max_degree < 1 or self.lookahead_depth < 1:
            raise ConfigError("degrees must be >= 1")


class _PatternEntry:
    """Per-signature delta statistics."""

    __slots__ = ("counters", "total")

    def __init__(self) -> None:
        self.counters: Dict[int, int] = {}
        self.total = 0


class SPPPrefetcher(Prefetcher):
    """Signature-path delta prefetcher with confidence throttling."""

    name = "spp"

    def __init__(self, config: Optional[SPPConfig] = None):
        self.config = config or SPPConfig()
        # page -> (signature, last_offset)
        self._signature_table: "OrderedDict[int, List[int]]" = OrderedDict()
        self._pattern_table: "OrderedDict[int, _PatternEntry]" = OrderedDict()

    # -- table maintenance ---------------------------------------------------

    def _touch_signature(self, page: int) -> Optional[List[int]]:
        row = self._signature_table.get(page)
        if row is not None:
            self._signature_table.move_to_end(page)
        return row

    def _insert_signature(self, page: int, offset: int) -> None:
        if (len(self._signature_table) >= self.config.signature_table_size
                and page not in self._signature_table):
            self._signature_table.popitem(last=False)
        self._signature_table[page] = [0, offset]

    def _pattern_entry(self, signature: int, create: bool) -> Optional[_PatternEntry]:
        entry = self._pattern_table.get(signature)
        if entry is not None:
            self._pattern_table.move_to_end(signature)
            return entry
        if not create:
            return None
        if len(self._pattern_table) >= self.config.pattern_table_size:
            self._pattern_table.popitem(last=False)
        entry = _PatternEntry()
        self._pattern_table[signature] = entry
        return entry

    def _record(self, signature: int, delta: int) -> None:
        entry = self._pattern_entry(signature, create=True)
        count = entry.counters.get(delta, 0)
        if count < self.config.max_counter:
            entry.counters[delta] = count + 1
            entry.total += 1
        else:
            # Saturated: age everything to keep ratios adaptive.
            for key in list(entry.counters):
                entry.counters[key] = max(1, entry.counters[key] // 2)
            entry.total = sum(entry.counters.values())
            entry.counters[delta] = entry.counters.get(delta, 0) + 1
            entry.total += 1

    # -- per-access ------------------------------------------------------------

    def process(self, access: MemoryAccess) -> List[int]:
        cfg = self.config
        page, offset = access.page, access.offset
        row = self._touch_signature(page)
        if row is None:
            self._insert_signature(page, offset)
            return []
        signature, last_offset = row
        delta = offset - last_offset
        if delta == 0:
            return []
        self._record(signature, delta)
        signature = advance_signature(signature, delta)
        row[0], row[1] = signature, offset

        # Speculative path walk with multiplicative confidence.
        addresses: List[int] = []
        confidence = 1.0
        speculative_signature = signature
        speculative_offset = offset
        for _ in range(cfg.lookahead_depth):
            entry = self._pattern_entry(speculative_signature, create=False)
            if entry is None or entry.total == 0:
                break
            best_delta, best_count = max(entry.counters.items(),
                                         key=lambda item: item[1])
            confidence *= best_count / entry.total
            if confidence < cfg.prefetch_threshold:
                break
            speculative_offset += best_delta
            if not 0 <= speculative_offset < BLOCKS_PER_PAGE:
                break
            addresses.append(compose_address(page, speculative_offset))
            if len(addresses) >= cfg.max_degree:
                break
            speculative_signature = advance_signature(
                speculative_signature, best_delta)
        return addresses

    def process_batch(self, addresses, pcs, instr_ids) -> List[List[int]]:
        """Chunked form: columnar page/offset split, hoisted table walk.

        The signature tables are read-after-write within a chunk (the
        path walk consults patterns recorded by earlier accesses), so
        the walk is sequential; the batch win is one vectorized
        page/offset extraction plus local handles for both LRU tables.
        Semantics mirror :meth:`process` exactly.
        """
        import numpy as np

        from ..types import BLOCK_BITS, PAGE_BITS

        cfg = self.config
        threshold = cfg.prefetch_threshold
        depth = cfg.lookahead_depth
        max_degree = cfg.max_degree
        st = self._signature_table
        st_get = st.get
        st_move = st.move_to_end
        pt_entry = self._pattern_entry
        record = self._record
        arr = np.asarray(addresses)
        pages_l = (arr >> PAGE_BITS).tolist()
        offsets_l = ((arr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1)).tolist()
        results: List[List[int]] = []
        append = results.append
        for page, offset in zip(pages_l, offsets_l):
            row = st_get(page)
            if row is None:
                self._insert_signature(page, offset)
                append([])
                continue
            st_move(page)
            signature, last_offset = row
            delta = offset - last_offset
            if delta == 0:
                append([])
                continue
            record(signature, delta)
            signature = advance_signature(signature, delta)
            row[0], row[1] = signature, offset

            addrs: List[int] = []
            confidence = 1.0
            spec_signature = signature
            spec_offset = offset
            page_base = page << PAGE_BITS
            for _ in range(depth):
                entry = pt_entry(spec_signature, create=False)
                if entry is None or entry.total == 0:
                    break
                best_delta, best_count = max(entry.counters.items(),
                                             key=lambda item: item[1])
                confidence *= best_count / entry.total
                if confidence < threshold:
                    break
                spec_offset += best_delta
                if not 0 <= spec_offset < BLOCKS_PER_PAGE:
                    break
                addrs.append(page_base | (spec_offset << BLOCK_BITS))
                if len(addrs) >= max_degree:
                    break
                spec_signature = advance_signature(spec_signature,
                                                   best_delta)
            append(addrs)
        return results

    def reset(self) -> None:
        self._signature_table.clear()
        self._pattern_table.clear()
