"""Fixed-priority prefetcher ensembles (paper §3.4, §5).

The paper's best design point combines PATHFINDER with Next-Line and
SISB: PATHFINDER's high-confidence predictions take priority, and the
remaining slots of the 2-per-access budget are filled by the
rule-based members.  The priority is *fixed*, which the paper notes can
leave the ensemble slightly behind SISB-only on temporally-dominated
benchmarks — a behaviour this implementation reproduces.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigError
from ..types import MemoryAccess, Trace
from .base import Prefetcher


class EnsemblePrefetcher(Prefetcher):
    """Priority-ordered combination of prefetchers.

    Args:
        members: Prefetchers in priority order (first = highest).
        budget: Slots available per access (paper: 2).
    """

    name = "ensemble"

    def __init__(self, members: Sequence[Prefetcher], budget: int = 2):
        if not members:
            raise ConfigError("ensemble needs at least one member")
        if budget < 1:
            raise ConfigError("budget must be >= 1")
        self.members = list(members)
        self.budget = budget
        self.name = "+".join(m.name for m in self.members)
        #: Per-member count of prefetch slots actually used.
        self.slots_used = [0] * len(self.members)

    def attach_observability(self, obs) -> None:
        for member in self.members:
            member.attach_observability(obs)

    def publish_telemetry(self) -> None:
        for member in self.members:
            member.publish_telemetry()

    def train(self, trace: Trace) -> None:
        for member in self.members:
            member.train(trace)

    def process(self, access: MemoryAccess) -> List[int]:
        chosen: List[int] = []
        seen_blocks = set()
        for index, member in enumerate(self.members):
            # Every member observes every access (their tables must
            # stay warm) even when it wins no slots.
            candidates = member.process(access)
            for address in candidates:
                block = address >> 6
                if block in seen_blocks:
                    continue
                if len(chosen) < self.budget:
                    chosen.append(address)
                    seen_blocks.add(block)
                    self.slots_used[index] += 1
        return chosen

    def reset(self) -> None:
        for member in self.members:
            member.reset()
        self.slots_used = [0] * len(self.members)
