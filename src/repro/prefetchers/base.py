"""The prefetcher interface and the trace→prefetch-file driver.

All prefetchers — PATHFINDER and every baseline — implement the same
per-access protocol: observe one demand load, optionally return byte
addresses to prefetch.  :func:`generate_prefetches` drives a prefetcher
over a whole trace and produces the ML-DPC-style prefetch file that
:func:`repro.sim.simulate` replays, enforcing the paper's budget of at
most two prefetches per triggering access.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError, PrefetchFileError, ReproError
from ..types import MemoryAccess, PrefetchRequest, Trace


class Prefetcher:
    """Base class for all prefetchers.

    Subclasses implement :meth:`process`; stateful prefetchers keep
    their tables/models as instance attributes.  Offline-trained
    prefetchers (Delta-LSTM, Voyager) additionally override
    :meth:`train` which the driver calls before the replay pass.
    """

    #: Human-readable name used in reports.
    name = "base"

    def attach_observability(self, obs) -> None:
        """Accept an :class:`repro.obs.Observability` bundle.

        The base implementation ignores it; prefetchers with internal
        state worth exporting (PATHFINDER's SNN, ensembles) override
        this and :meth:`publish_telemetry`.
        """

    def publish_telemetry(self) -> None:
        """Push accumulated internals into the attached registry.

        Called by the harness after the prefetch file is generated;
        a no-op unless :meth:`attach_observability` armed something.
        """

    def train(self, trace: Trace) -> None:
        """Offline training pass (no-op for online prefetchers)."""

    def process(self, access: MemoryAccess) -> List[int]:
        """Observe one demand load; return byte addresses to prefetch.

        Returning more addresses than the driver's budget is fine —
        extras are truncated in priority order (first = highest).
        """
        raise NotImplementedError

    def process_batch(self, addresses, pcs, instr_ids) -> List[List[int]]:
        """Observe a chunk of demand loads; one address list per load.

        The batch protocol of the columnar driver: ``addresses``,
        ``pcs``, and ``instr_ids`` are aligned ``int64`` column slices
        straight out of :meth:`repro.types.Trace.arrays`.  The result
        must be exactly ``[self.process(a) for a in chunk]`` — the
        parity suite drives both paths and asserts bit-identical
        prefetch files.

        This default adapts any scalar prefetcher by looping; batched
        implementations (NextLine's vectorized page math, PATHFINDER's
        three-pass SNN pipeline) override it for throughput, never for
        behaviour.
        """
        process = self.process
        return [process(MemoryAccess(instr_id=i, pc=p, address=a))
                for a, p, i in zip(np.asarray(addresses).tolist(),
                                   np.asarray(pcs).tolist(),
                                   np.asarray(instr_ids).tolist())]

    def reset(self) -> None:
        """Clear all run-time state (tables, histories); keep config."""


#: Accesses handed to :meth:`Prefetcher.process_batch` per driver
#: chunk.  Large enough to amortise the batched pipeline's per-chunk
#: passes, small enough that a chunk's working set stays cache-warm.
DEFAULT_CHUNK = 4096


def generate_prefetches(prefetcher: Prefetcher, trace: Trace,
                        budget: int = 2,
                        train: bool = True,
                        chunk: int = DEFAULT_CHUNK) -> List[PrefetchRequest]:
    """Run ``prefetcher`` over ``trace`` and emit its prefetch file.

    The driver is columnar: the trace's struct-of-arrays view is
    sliced into ``chunk``-sized column windows and handed to
    :meth:`Prefetcher.process_batch` (scalar prefetchers transparently
    loop via the base implementation).  Per-access budget enforcement
    and block-dedup semantics are unchanged from the scalar driver,
    and any chunk size produces the identical prefetch file.

    Args:
        prefetcher: The prefetcher to drive.
        trace: The demand-load trace, in program order.
        budget: Maximum prefetches kept per triggering access
            (paper: 2).
        train: Whether to invoke the prefetcher's offline
            :meth:`Prefetcher.train` hook first.
        chunk: Accesses per :meth:`Prefetcher.process_batch` call.

    Returns:
        Prefetch records ordered by trigger instruction id.

    Raises:
        PrefetchFileError: An unguarded prefetcher raised mid-trace;
            the original exception is chained, with the offending
            chunk in the message.  Already-typed :class:`ReproError`
            exceptions pass through unchanged.  (The harness wraps
            prefetchers in a quarantining
            :class:`~repro.resilience.guard.GuardedPrefetcher`, which
            degrades instead of raising.)
    """
    if budget <= 0:
        raise ConfigError("prefetch budget must be positive")
    if chunk <= 0:
        raise ConfigError("driver chunk size must be positive")
    if train:
        prefetcher.train(trace)
    arrays = trace.arrays()
    instr_ids = arrays.instr_id_list()
    n = len(instr_ids)
    requests: List[PrefetchRequest] = []
    for start in range(0, n, chunk):
        end = min(start + chunk, n)
        try:
            per_access = prefetcher.process_batch(
                arrays.addresses[start:end],
                arrays.pcs[start:end],
                arrays.instr_ids[start:end])
        except ReproError:
            raise
        except Exception as exc:
            raise PrefetchFileError(
                f"{prefetcher.name} failed on access chunk "
                f"[{start}, {end}) (instr_ids {instr_ids[start]}.."
                f"{instr_ids[end - 1]}): "
                f"{type(exc).__name__}: {exc}") from exc
        for offset, addresses in enumerate(per_access):
            if not addresses:
                continue
            trigger = instr_ids[start + offset]
            seen = set()
            for address in addresses:
                block = address >> 6
                if block in seen:
                    continue
                seen.add(block)
                requests.append(PrefetchRequest(
                    trigger_instr_id=trigger, address=address))
                if len(seen) >= budget:
                    break
    return requests
