"""The prefetcher interface and the trace→prefetch-file driver.

All prefetchers — PATHFINDER and every baseline — implement the same
per-access protocol: observe one demand load, optionally return byte
addresses to prefetch.  :func:`generate_prefetches` drives a prefetcher
over a whole trace and produces the ML-DPC-style prefetch file that
:func:`repro.sim.simulate` replays, enforcing the paper's budget of at
most two prefetches per triggering access.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError, PrefetchFileError, ReproError
from ..types import MemoryAccess, PrefetchRequest, Trace


class Prefetcher:
    """Base class for all prefetchers.

    Subclasses implement :meth:`process`; stateful prefetchers keep
    their tables/models as instance attributes.  Offline-trained
    prefetchers (Delta-LSTM, Voyager) additionally override
    :meth:`train` which the driver calls before the replay pass.
    """

    #: Human-readable name used in reports.
    name = "base"

    def attach_observability(self, obs) -> None:
        """Accept an :class:`repro.obs.Observability` bundle.

        The base implementation ignores it; prefetchers with internal
        state worth exporting (PATHFINDER's SNN, ensembles) override
        this and :meth:`publish_telemetry`.
        """

    def publish_telemetry(self) -> None:
        """Push accumulated internals into the attached registry.

        Called by the harness after the prefetch file is generated;
        a no-op unless :meth:`attach_observability` armed something.
        """

    def train(self, trace: Trace) -> None:
        """Offline training pass (no-op for online prefetchers)."""

    def process(self, access: MemoryAccess) -> List[int]:
        """Observe one demand load; return byte addresses to prefetch.

        Returning more addresses than the driver's budget is fine —
        extras are truncated in priority order (first = highest).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear all run-time state (tables, histories); keep config."""


def generate_prefetches(prefetcher: Prefetcher, trace: Trace,
                        budget: int = 2,
                        train: bool = True) -> List[PrefetchRequest]:
    """Run ``prefetcher`` over ``trace`` and emit its prefetch file.

    Args:
        prefetcher: The prefetcher to drive.
        trace: The demand-load trace, in program order.
        budget: Maximum prefetches kept per triggering access
            (paper: 2).
        train: Whether to invoke the prefetcher's offline
            :meth:`Prefetcher.train` hook first.

    Returns:
        Prefetch records ordered by trigger instruction id.

    Raises:
        PrefetchFileError: An unguarded prefetcher raised mid-trace;
            the original exception is chained, with the offending
            access in the message.  Already-typed :class:`ReproError`
            exceptions pass through unchanged.  (The harness wraps
            prefetchers in a quarantining
            :class:`~repro.resilience.guard.GuardedPrefetcher`, which
            degrades instead of raising.)
    """
    if budget <= 0:
        raise ConfigError("prefetch budget must be positive")
    if train:
        prefetcher.train(trace)
    requests: List[PrefetchRequest] = []
    for access in trace:
        try:
            addresses = prefetcher.process(access)
        except ReproError:
            raise
        except Exception as exc:
            raise PrefetchFileError(
                f"{prefetcher.name} failed on access "
                f"instr_id={access.instr_id} pc={access.pc:#x} "
                f"address={access.address:#x}: "
                f"{type(exc).__name__}: {exc}") from exc
        seen = set()
        for address in addresses:
            block = address >> 6
            if block in seen:
                continue
            seen.add(block)
            requests.append(PrefetchRequest(
                trigger_instr_id=access.instr_id, address=address))
            if len(seen) >= budget:
                break
    return requests
