"""The prefetcher interface and the trace→prefetch-file driver.

All prefetchers — PATHFINDER and every baseline — implement the same
per-access protocol: observe one demand load, optionally return byte
addresses to prefetch.  :func:`generate_prefetches` drives a prefetcher
over a whole trace and produces the ML-DPC-style prefetch file that
:func:`repro.sim.simulate` replays, enforcing the paper's budget of at
most two prefetches per triggering access.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError, PrefetchFileError, ReproError
from ..types import MemoryAccess, PrefetchRequest, Trace


class Prefetcher:
    """Base class for all prefetchers.

    Subclasses implement :meth:`process`; stateful prefetchers keep
    their tables/models as instance attributes.  Offline-trained
    prefetchers (Delta-LSTM, Voyager) additionally override
    :meth:`train` which the driver calls before the replay pass.
    """

    #: Human-readable name used in reports.
    name = "base"

    def attach_observability(self, obs) -> None:
        """Accept an :class:`repro.obs.Observability` bundle.

        The base implementation ignores it; prefetchers with internal
        state worth exporting (PATHFINDER's SNN, ensembles) override
        this and :meth:`publish_telemetry`.
        """

    def publish_telemetry(self) -> None:
        """Push accumulated internals into the attached registry.

        Called by the harness after the prefetch file is generated;
        a no-op unless :meth:`attach_observability` armed something.
        """

    def train(self, trace: Trace) -> None:
        """Offline training pass (no-op for online prefetchers)."""

    def series_arm(self) -> None:
        """Start windowed learning-dynamics bookkeeping (``--series``).

        Called once by :func:`generate_prefetches` before the first
        access when a series recorder is armed.  The base
        implementation is a no-op; prefetchers with internals worth
        tracking per window (PATHFINDER's prediction accuracy, weight
        drift, table churn) override this and :meth:`series_sample`.
        """

    def series_sample(self, cumulative, gauges) -> None:
        """Contribute windowed series values at a window boundary.

        ``cumulative`` and ``gauges`` are dicts the driver passes to
        one :meth:`repro.obs.timeseries.WindowRecorder.sample` call;
        implementations add cumulative counters (diffed into per-window
        sums by the recorder) and point-in-time gauges.  Only called
        after :meth:`series_arm`.  Must not mutate prediction state —
        prefetch files stay bit-identical with the series on or off.
        """

    def process(self, access: MemoryAccess) -> List[int]:
        """Observe one demand load; return byte addresses to prefetch.

        Returning more addresses than the driver's budget is fine —
        extras are truncated in priority order (first = highest).
        """
        raise NotImplementedError

    def process_batch(self, addresses, pcs, instr_ids) -> List[List[int]]:
        """Observe a chunk of demand loads; one address list per load.

        The batch protocol of the columnar driver: ``addresses``,
        ``pcs``, and ``instr_ids`` are aligned ``int64`` column slices
        straight out of :meth:`repro.types.Trace.arrays`.  The result
        must be exactly ``[self.process(a) for a in chunk]`` — the
        parity suite drives both paths and asserts bit-identical
        prefetch files.

        This default adapts any scalar prefetcher by looping; batched
        implementations (NextLine's vectorized page math, PATHFINDER's
        three-pass SNN pipeline) override it for throughput, never for
        behaviour.
        """
        process = self.process
        return [process(MemoryAccess(instr_id=i, pc=p, address=a))
                for a, p, i in zip(np.asarray(addresses).tolist(),
                                   np.asarray(pcs).tolist(),
                                   np.asarray(instr_ids).tolist())]

    def reset(self) -> None:
        """Clear all run-time state (tables, histories); keep config."""


#: Accesses handed to :meth:`Prefetcher.process_batch` per driver
#: chunk.  Large enough to amortise the batched pipeline's per-chunk
#: passes, small enough that a chunk's working set stays cache-warm.
DEFAULT_CHUNK = 4096


#: Series name for the driver's own cumulative counter: prefetch
#: records emitted so far (per-window deltas after recording).
GEN_PREFETCHES = "gen.prefetches"


def generate_prefetches(prefetcher: Prefetcher, trace: Trace,
                        budget: int = 2,
                        train: bool = True,
                        chunk: int = DEFAULT_CHUNK,
                        recorder=None) -> List[PrefetchRequest]:
    """Run ``prefetcher`` over ``trace`` and emit its prefetch file.

    The driver is columnar: the trace's struct-of-arrays view is
    sliced into ``chunk``-sized column windows and handed to
    :meth:`Prefetcher.process_batch` (scalar prefetchers transparently
    loop via the base implementation).  Per-access budget enforcement
    and block-dedup semantics are unchanged from the scalar driver,
    and any chunk size produces the identical prefetch file.

    Args:
        prefetcher: The prefetcher to drive.
        trace: The demand-load trace, in program order.
        budget: Maximum prefetches kept per triggering access
            (paper: 2).
        train: Whether to invoke the prefetcher's offline
            :meth:`Prefetcher.train` hook first.
        chunk: Accesses per :meth:`Prefetcher.process_batch` call.
        recorder: Optional :class:`~repro.obs.timeseries.WindowRecorder`.
            When given, the driver arms the prefetcher's
            :meth:`Prefetcher.series_arm` bookkeeping, splits chunks at
            window boundaries, and emits one sample per window (its own
            emitted-prefetch counter plus whatever the prefetcher's
            :meth:`Prefetcher.series_sample` contributes).  Pure
            observation: the returned prefetch file is bit-identical
            with or without it.

    Returns:
        Prefetch records ordered by trigger instruction id.

    Raises:
        PrefetchFileError: An unguarded prefetcher raised mid-trace;
            the original exception is chained, with the offending
            chunk in the message.  Already-typed :class:`ReproError`
            exceptions pass through unchanged.  (The harness wraps
            prefetchers in a quarantining
            :class:`~repro.resilience.guard.GuardedPrefetcher`, which
            degrades instead of raising.)
    """
    if budget <= 0:
        raise ConfigError("prefetch budget must be positive")
    if chunk <= 0:
        raise ConfigError("driver chunk size must be positive")
    if train:
        prefetcher.train(trace)
    if recorder is not None:
        prefetcher.series_arm()
    window = recorder.window if recorder is not None else 0
    arrays = trace.arrays()
    instr_ids = arrays.instr_id_list()
    n = len(instr_ids)
    requests: List[PrefetchRequest] = []
    start = 0
    while start < n:
        end = min(start + chunk, n)
        if window:
            # Never let a chunk straddle a window boundary, so samples
            # land exactly on multiples of the recorder's window.
            end = min(end, (start // window + 1) * window)
        try:
            per_access = prefetcher.process_batch(
                arrays.addresses[start:end],
                arrays.pcs[start:end],
                arrays.instr_ids[start:end])
        except ReproError:
            raise
        except Exception as exc:
            raise PrefetchFileError(
                f"{prefetcher.name} failed on access chunk "
                f"[{start}, {end}) (instr_ids {instr_ids[start]}.."
                f"{instr_ids[end - 1]}): "
                f"{type(exc).__name__}: {exc}") from exc
        for offset, addresses in enumerate(per_access):
            if not addresses:
                continue
            trigger = instr_ids[start + offset]
            seen = set()
            for address in addresses:
                block = address >> 6
                if block in seen:
                    continue
                seen.add(block)
                requests.append(PrefetchRequest(
                    trigger_instr_id=trigger, address=address))
                if len(seen) >= budget:
                    break
        if window and (end % window == 0 or end == n):
            cumulative = {GEN_PREFETCHES: len(requests)}
            gauges: dict = {}
            prefetcher.series_sample(cumulative, gauges)
            recorder.sample(end, cumulative=cumulative, gauges=gauges)
        start = end
    return requests
