"""Prefetchers: the shared interface and every baseline from the paper.

- :mod:`repro.prefetchers.base` — the :class:`Prefetcher` interface and
  the trace→prefetch-file driver.
- :mod:`repro.prefetchers.nextline` — next-line (NL).
- :mod:`repro.prefetchers.best_offset` — Best-Offset (BO), Michaud 2016.
- :mod:`repro.prefetchers.spp` — Signature Path Prefetcher with
  confidence-based lookahead throttling.
- :mod:`repro.prefetchers.sisb` — idealised Irregular Stream Buffer
  (temporal record/replay).
- :mod:`repro.prefetchers.pythia` — tabular-RL delta prefetcher.
- :mod:`repro.prefetchers.delta_lstm` — Delta-LSTM (Hashemi et al.)
  on the numpy LSTM substrate, with address clustering.
- :mod:`repro.prefetchers.voyager` — hierarchical page/offset LSTM.
- :mod:`repro.prefetchers.ensemble` — fixed-priority ensembles
  (PATHFINDER > NL > SISB), paper §3.4 / §5.
- :mod:`repro.prefetchers.adaptive_ensemble` — dynamic priority by
  recent usefulness (the paper's flagged future work, §5).
- :mod:`repro.prefetchers.cold_page` — first-access-to-a-page
  prediction (the paper's flagged future work, §3.4).

PATHFINDER itself lives in :mod:`repro.core`.
"""

from .base import Prefetcher, generate_prefetches
from .adaptive_ensemble import AdaptiveEnsemblePrefetcher
from .cold_page import ColdPageConfig, ColdPagePredictor
from .nextline import NextLinePrefetcher
from .best_offset import BestOffsetConfig, BestOffsetPrefetcher
from .spp import SPPConfig, SPPPrefetcher
from .sisb import SISBConfig, SISBPrefetcher
from .pythia import PythiaConfig, PythiaPrefetcher
from .delta_lstm import DeltaLSTMConfig, DeltaLSTMPrefetcher
from .voyager import VoyagerConfig, VoyagerPrefetcher
from .ensemble import EnsemblePrefetcher

__all__ = [
    "Prefetcher",
    "generate_prefetches",
    "NextLinePrefetcher",
    "BestOffsetConfig",
    "BestOffsetPrefetcher",
    "SPPConfig",
    "SPPPrefetcher",
    "SISBConfig",
    "SISBPrefetcher",
    "PythiaConfig",
    "PythiaPrefetcher",
    "DeltaLSTMConfig",
    "DeltaLSTMPrefetcher",
    "VoyagerConfig",
    "VoyagerPrefetcher",
    "EnsemblePrefetcher",
    "AdaptiveEnsemblePrefetcher",
    "ColdPageConfig",
    "ColdPagePredictor",
]
