"""Idealised Irregular Stream Buffer (SISB) — temporal record/replay.

The paper uses the ML-DPC competition's idealised version of Jain &
Lin's Irregular Stream Buffer [20] as its temporal-prefetching
baseline.  The idealisation drops the hardware budget: a structural
address-correlation table maps each observed block (per PC stream) to
the block that followed it last time, linearised so that repeated
irregular sequences replay perfectly regardless of working-set size.

On each access the prefetcher walks the successor chain ``degree``
steps and prefetches those blocks.  This captures exactly what the
paper observes: on temporally repeating workloads (xalan, soplex,
omnetpp, sphinx) SISB is extremely strong, while on fresh-address
workloads (astar, bfs, cc) it has nothing to replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..types import MemoryAccess
from .base import Prefetcher


@dataclass(frozen=True)
class SISBConfig:
    """Idealised-ISB knobs.

    Attributes:
        degree: Successor-chain depth prefetched per access.
        pc_localized: Key the correlation streams by PC (as ISB's
            structural streams are); global correlation otherwise.
    """

    degree: int = 2
    pc_localized: bool = True

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ConfigError("degree must be >= 1")


class SISBPrefetcher(Prefetcher):
    """Unbounded temporal successor-correlation prefetcher."""

    name = "sisb"

    def __init__(self, config: Optional[SISBConfig] = None):
        self.config = config or SISBConfig()
        # successor[(stream, block)] -> next block in the recorded stream
        self._successor: Dict[Tuple[int, int], int] = {}
        self._last_block: Dict[int, int] = {}

    def _stream_of(self, access: MemoryAccess) -> int:
        return access.pc if self.config.pc_localized else 0

    def process(self, access: MemoryAccess) -> List[int]:
        stream = self._stream_of(access)
        block = access.block
        previous = self._last_block.get(stream)
        if previous is not None and previous != block:
            self._successor[(stream, previous)] = block
        self._last_block[stream] = block

        addresses: List[int] = []
        cursor = block
        for _ in range(self.config.degree):
            nxt = self._successor.get((stream, cursor))
            if nxt is None:
                break
            addresses.append(nxt << 6)
            cursor = nxt
        return addresses

    def process_batch(self, addresses, pcs, instr_ids) -> List[List[int]]:
        """Chunked form: columnar block/stream extraction, hoisted walk.

        Successor-chain updates are order-dependent (an access can
        record the link the very next access replays), so the loop
        stays sequential; the chunk converts per-access ``MemoryAccess``
        construction and attribute chasing into two array casts and
        local dictionary handles.
        """
        import numpy as np

        degree = self.config.degree
        successor = self._successor
        succ_get = successor.get
        last_block = self._last_block
        last_get = last_block.get
        blocks = (np.asarray(addresses) >> 6).tolist()
        if self.config.pc_localized:
            streams = np.asarray(pcs).tolist()
        else:
            streams = [0] * len(blocks)
        results: List[List[int]] = []
        append = results.append
        for stream, block in zip(streams, blocks):
            previous = last_get(stream)
            if previous is not None and previous != block:
                successor[(stream, previous)] = block
            last_block[stream] = block
            addrs: List[int] = []
            cursor = block
            for _ in range(degree):
                nxt = succ_get((stream, cursor))
                if nxt is None:
                    break
                addrs.append(nxt << 6)
                cursor = nxt
            append(addrs)
        return results

    def reset(self) -> None:
        self._successor.clear()
        self._last_block.clear()
