"""Trace (de)serialisation in an ML-DPC-style text format.

Each line of a trace file is::

    instr_id, pc, address

with hexadecimal pc/address.  Blank lines and ``#`` comments are
ignored.  This mirrors the load-trace format consumed by the ChampSim
fork used in the paper (minus fields the reproduction does not need).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

from ..errors import TraceFormatError
from ..types import MemoryAccess, Trace, validate_trace


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip-compressed if it ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as fh:
        fh.write(f"# trace: {trace.name}\n")
        fh.write(f"# total_instructions: {trace.instruction_count}\n")
        for acc in trace.accesses:
            fh.write(f"{acc.instr_id}, {acc.pc:#x}, {acc.address:#x}\n")


def load_trace(path: Union[str, Path], name: str = "") -> Trace:
    """Load a trace file written by :func:`save_trace` (or hand-authored).

    Args:
        path: File to read; ``.gz`` files are decompressed transparently.
        name: Optional trace name; defaults to metadata in the file or
            the file stem.

    Raises:
        TraceFormatError: if any line is malformed (carries the file
            and line number) or ids are not increasing.
    """
    path = Path(path)
    accesses = []
    total_instructions = None
    file_name = None
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("trace:"):
                    file_name = body.split(":", 1)[1].strip()
                elif body.startswith("total_instructions:"):
                    try:
                        total_instructions = int(
                            body.split(":", 1)[1].strip())
                    except ValueError as exc:
                        raise TraceFormatError(
                            f"bad total_instructions header: {exc}",
                            path=str(path), lineno=lineno) from exc
                continue
            parts = [p.strip() for p in line.split(",")]
            if len(parts) != 3:
                raise TraceFormatError(
                    f"expected 3 fields, got {len(parts)}",
                    path=str(path), lineno=lineno)
            try:
                instr_id = int(parts[0], 0)
                pc = int(parts[1], 0)
                address = int(parts[2], 0)
            except ValueError as exc:
                raise TraceFormatError(str(exc), path=str(path),
                                       lineno=lineno) from exc
            accesses.append(MemoryAccess(instr_id=instr_id, pc=pc, address=address))
    trace = Trace(name=name or file_name or path.stem, accesses=accesses,
                  total_instructions=total_instructions)
    validate_trace(trace)
    return trace
