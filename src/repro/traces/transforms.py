"""Trace transforms modelling the noise sources of paper §2.3.

The paper motivates neural prefetching with tolerance to noise from
(a) out-of-order execution locally reordering loads and (b) co-running
threads interleaving their accesses into the shared-LLC stream.  These
transforms inject exactly those effects into any trace:

- :func:`reorder_accesses` — bounded local shuffling (OoO windows).
- :func:`interleave_traces` — merge several programs' traces into one
  shared-LLC access stream, with per-program address-space and PC
  isolation.
- :func:`drop_accesses` — random thinning (models filtered/ sampled
  access streams).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigError
from ..types import MemoryAccess, Trace


def reorder_accesses(trace: Trace, window: int, seed: int = 0,
                     name: str = "") -> Trace:
    """Shuffle accesses within consecutive windows of the trace.

    Models out-of-order issue: loads within a ``window``-sized group
    may retire against the cache in any order, perturbing the delta
    sequences every table-keyed prefetcher relies on, while leaving the
    *set* of accesses (and instruction ids, re-sorted) unchanged.

    Args:
        trace: Source trace.
        window: Reorder window in accesses (1 = identity).
        seed: RNG seed.
        name: New trace name (default: derived).
    """
    if window < 1:
        raise ConfigError("reorder window must be >= 1")
    rng = np.random.default_rng(seed)
    accesses: List[MemoryAccess] = []
    source = trace.accesses
    for start in range(0, len(source), window):
        group = list(source[start:start + window])
        ids = sorted(a.instr_id for a in group)
        order = rng.permutation(len(group))
        for instr_id, index in zip(ids, order):
            original = group[int(index)]
            accesses.append(MemoryAccess(instr_id=instr_id,
                                         pc=original.pc,
                                         address=original.address))
    return Trace(name=name or f"{trace.name}+reorder{window}",
                 accesses=accesses,
                 total_instructions=trace.instruction_count)


def interleave_traces(traces: Sequence[Trace], seed: int = 0,
                      name: str = "") -> Trace:
    """Merge several programs into one shared-LLC access stream.

    Each input trace is placed in its own address space (high bits) and
    PC space, then the streams are merged in instruction-id order —
    the interference pattern a shared-LLC prefetcher actually sees
    when programs co-run.

    Args:
        traces: Per-program traces (at least two).
        seed: Tie-break seed for equal instruction ids.
        name: New trace name (default: joined).
    """
    if len(traces) < 2:
        raise ConfigError("interleaving needs at least two traces")
    rng = np.random.default_rng(seed)
    tagged: List[MemoryAccess] = []
    for core, trace in enumerate(traces):
        address_base = core << 44
        pc_base = core << 32
        for access in trace:
            tagged.append(MemoryAccess(
                instr_id=access.instr_id,
                pc=access.pc | pc_base,
                address=access.address | address_base))
    # Stable merge by instruction id with random tie-breaks, then
    # re-stamp strictly increasing ids.
    tie = rng.random(len(tagged))
    order = sorted(range(len(tagged)),
                   key=lambda i: (tagged[i].instr_id, tie[i]))
    accesses = []
    for new_id, index in enumerate(order, start=1):
        source = tagged[index]
        accesses.append(MemoryAccess(instr_id=new_id * 4, pc=source.pc,
                                     address=source.address))
    return Trace(name=name or "+".join(t.name for t in traces),
                 accesses=accesses,
                 total_instructions=len(accesses) * 4 + 1)


def drop_accesses(trace: Trace, fraction: float, seed: int = 0,
                  name: str = "") -> Trace:
    """Randomly remove a fraction of accesses (stream thinning)."""
    if not 0.0 <= fraction < 1.0:
        raise ConfigError("drop fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(trace)) >= fraction
    accesses = [a for a, k in zip(trace.accesses, keep) if k]
    if not accesses:
        raise ConfigError("drop fraction removed every access")
    return Trace(name=name or f"{trace.name}-thin{fraction:.2f}",
                 accesses=accesses,
                 total_instructions=trace.instruction_count)
