"""Trace substrate: containers, (de)serialisation, and synthetic workloads.

The paper evaluates on ML-DPC load traces from GAP / SPEC06 / SPEC17 /
CloudSuite, which are not redistributable.  This package provides both a
loader for ML-DPC-style text traces and synthetic generators calibrated
to each benchmark's published delta statistics (paper Tables 5, 7, 8) —
see ``DESIGN.md`` for the substitution rationale.
"""

from .trace import load_trace, save_trace
from .transforms import drop_accesses, interleave_traces, reorder_accesses
from .synthetic import (
    DeltaPatternStream,
    PointerChaseStream,
    SequentialStream,
    StreamMixer,
    TemporalReplayStream,
)
from .workloads import WORKLOAD_NAMES, WorkloadSpec, get_workload_spec, make_trace

__all__ = [
    "load_trace",
    "save_trace",
    "drop_accesses",
    "interleave_traces",
    "reorder_accesses",
    "DeltaPatternStream",
    "PointerChaseStream",
    "SequentialStream",
    "StreamMixer",
    "TemporalReplayStream",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "get_workload_spec",
    "make_trace",
]
