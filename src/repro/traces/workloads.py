"""The 11 evaluation workloads, as calibrated synthetic generators.

The paper evaluates on ML-DPC traces (GAP ``cc-5``/``bfs-10``, SPEC06
``omnetpp/astar/soplex/sphinx``, SPEC17 ``mcf/xalan``, CloudSuite
``cassandra/cloud9/nutch``).  Those traces are proprietary, so each is
replaced here by a synthetic mixture whose pattern classes reproduce the
behaviour the paper reports for that benchmark:

- *temporal-replay heavy* (xalan, soplex, omnetpp, sphinx): SISB's
  record/replay wins; per-page delta learners see less structure.
- *fresh-page delta patterns* (astar, bfs, cc): the delta structure
  recurs but addresses never repeat, so neural delta learners win and
  temporal prefetchers cannot.
- *irregular* (mcf): thin noisy signal; PATHFINDER's confidence filter
  keeps it quiet while aggressive learners (Pythia) prefetch more.
- *mixed/noisy* (CloudSuite): combinations with higher noise.

Mixture weights were tuned so the per-1K delta statistics land near the
paper's Tables 7 and 8 (density, distinct count, top-5 concentration);
the benches report the measured values next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..types import Trace
from .synthetic import (
    AccessStream,
    DeltaPatternStream,
    InterleavedPatternStream,
    PointerChaseStream,
    SequentialStream,
    StreamMixer,
    TemporalReplayStream,
    trace_from_columns,
)


@dataclass(frozen=True)
class Component:
    """One weighted stream in a workload mixture.

    Attributes:
        kind: ``"delta"``, ``"replay"``, ``"chase"``, ``"seq"`` or
            ``"interleaved"``.
        weight: Relative interleaving weight.
        params: Keyword arguments for the stream class (pc / regions are
            assigned automatically when the mixture is built).
    """

    kind: str
    weight: float
    params: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one synthetic benchmark.

    Attributes:
        name: Trace name used in the paper (e.g. ``"605-mcf-s1"``).
        suite: Benchmark suite (GAP / SPEC06 / SPEC17 / CloudSuite).
        mean_instr_gap: Mean instructions per load (paper Table 5:
            total instructions / 1M loads).
        components: The weighted stream mixture.
    """

    name: str
    suite: str
    mean_instr_gap: float
    components: Tuple[Component, ...]


def _delta(weight: float, pattern: Sequence[int], noise: float = 0.0,
           start_offset: int = 0, accesses_per_page: int = 0) -> Component:
    params: Dict = {"pattern": tuple(pattern), "noise": noise,
                    "start_offset": start_offset}
    if accesses_per_page:
        params["accesses_per_page"] = accesses_per_page
    return Component("delta", weight, params)


def _replay(weight: float, length: int, region_pages: int = 512,
            run_length: int = 1, offset_grid: int = 1) -> Component:
    return Component("replay", weight,
                     {"length": length, "region_pages": region_pages,
                      "run_length": run_length, "offset_grid": offset_grid})


def _chase(weight: float, locality: float = 0.2,
           region_pages: int = 1 << 15,
           local_jump_max: int = 8) -> Component:
    return Component("chase", weight,
                     {"locality": locality, "region_pages": region_pages,
                      "local_jump_max": local_jump_max})


def _seq(weight: float, stride: int = 1, region_pages: int = 2048) -> Component:
    return Component("seq", weight,
                     {"stride": stride, "region_pages": region_pages})


def _inter(weight: float, pattern_a, pattern_b, noise: float = 0.0) -> Component:
    return Component("interleaved", weight,
                     {"pattern_a": tuple(pattern_a),
                      "pattern_b": tuple(pattern_b), "noise": noise})


# ---------------------------------------------------------------------------
# Workload catalogue.  Page regions are auto-assigned disjointly at build
# time; only the pattern shape is declared here.
# ---------------------------------------------------------------------------

_SPECS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    _SPECS[spec.name] = spec


# GAP cc-5: graph connected-components.  Rich, diverse delta patterns on
# fresh pages (CSR edge scans at varying strides) with some irregular
# vertex lookups.  Neural delta learners do well; temporal replay absent.
_register(WorkloadSpec(
    name="cc-5", suite="GAP", mean_instr_gap=31.0,
    components=(
        _inter(0.16, (1, 2, 1, 3), (2, 5, 2), noise=0.04),
        _inter(0.14, (3, 1, 4, 1), (6, 2, 3), noise=0.05),
        _delta(0.10, (4, 7), noise=0.06),
        _delta(0.08, (2, 2, 9), noise=0.06),
        _delta(0.08, (5, 3, 1, 2), noise=0.06),
        _delta(0.08, (7, 1, 5), noise=0.06),
        _seq(0.10, stride=1),
        _chase(0.30, locality=0.7, local_jump_max=64),
    )))

# GAP bfs-10: frontier scans (dense sequential) plus diverse neighbour
# patterns; deltas dense and top-heavy.
_register(WorkloadSpec(
    name="bfs-10", suite="GAP", mean_instr_gap=71.0,
    components=(
        _seq(0.26, stride=1),
        _inter(0.12, (1, 1, 2), (2, 3), noise=0.04),
        _delta(0.08, (1, 4, 2), noise=0.05),
        _delta(0.06, (3, 3, 5), noise=0.06),
        _inter(0.10, (3, 2, 4), (1, 5), noise=0.05),
        _chase(0.38, locality=0.85, local_jump_max=64),
    )))

# SPEC06 471-omnetpp: discrete-event simulation.  Heap/event-queue
# behaviour repeats temporally; very few distinct within-page deltas.
_register(WorkloadSpec(
    name="471-omnetpp-s1", suite="SPEC06", mean_instr_gap=65.0,
    components=(
        _replay(0.66, length=2200, region_pages=8800, offset_grid=16),
        _delta(0.06, (1, 3), noise=0.02),
        _delta(0.05, (2, 2), noise=0.02),
        _chase(0.23, locality=0.04),
    )))

# SPEC06 473-astar: path-finding over grids.  Sparse but highly
# structured per-page patterns on fresh pages; neural wins over SISB.
_register(WorkloadSpec(
    name="473-astar-s1", suite="SPEC06", mean_instr_gap=99.0,
    components=(
        _inter(0.30, (1, 8, 1, 8), (8, 1, 8), noise=0.03),
        _inter(0.22, (7, 2, 7), (2, 9, 2), noise=0.03),
        _delta(0.16, (1, 8, 2, 7), noise=0.04),
        _chase(0.32, locality=0.25),
    )))

# SPEC06 450-soplex: sparse LP solves.  Long strided sweeps that repeat
# across iterations — strong temporal component plus varied strides.
_register(WorkloadSpec(
    name="450-soplex-s0", suite="SPEC06", mean_instr_gap=39.0,
    components=(
        _replay(0.62, length=2400, region_pages=1200, run_length=2, offset_grid=4),
        _seq(0.04, stride=1),
        _seq(0.03, stride=3),
        _delta(0.08, (2, 1, 2), noise=0.05),
        _delta(0.09, (4, 4, 1), noise=0.06),
        _chase(0.14, locality=0.3),
    )))

# SPEC06 482-sphinx3: speech decoding over dense model arrays.  Very few
# distinct deltas, massive repetition, and temporally repeating sweeps.
_register(WorkloadSpec(
    name="482-sphinx-s0", suite="SPEC06", mean_instr_gap=95.0,
    components=(
        _replay(0.62, length=2400, region_pages=1200, run_length=1, offset_grid=8),
        _seq(0.06, stride=1),
        _delta(0.14, (1, 1, 2), noise=0.02),
        _delta(0.12, (2, 1), noise=0.02),
        _chase(0.06, locality=0.2),
    )))

# SPEC17 605-mcf: network-simplex pointer chasing.  Mostly irregular with
# a thin, noisy near-sequential residue that only aggressive prefetchers
# (Pythia) exploit; PATHFINDER stays selective and quiet here.
_register(WorkloadSpec(
    name="605-mcf-s1", suite="SPEC17", mean_instr_gap=48.0,
    components=(
        _chase(0.60, locality=0.03, region_pages=1 << 16, local_jump_max=64),
        _replay(0.30, length=1800, region_pages=7200),
        _delta(0.05, (1, 2), noise=0.35),
        _delta(0.05, (3, 5, 2), noise=0.35),
    )))

# SPEC17 623-xalancbmk: XML transformation.  Dominated by delta 1 (the
# local minimum Pythia settles on) but with better longer patterns, plus
# heavy temporal repetition that favours SISB overall.
_register(WorkloadSpec(
    name="623-xalan-s1", suite="SPEC17", mean_instr_gap=63.0,
    components=(
        _replay(0.62, length=2400, region_pages=1200, run_length=1, offset_grid=16),
        _seq(0.10, stride=1),
        _delta(0.12, (1, 1, 6), noise=0.03),
        _delta(0.08, (2, 9, 2), noise=0.03),
        _chase(0.08, locality=0.2),
    )))

# CloudSuite cassandra: wide mixture with noticeable noise and moderate
# temporal reuse (storage engine scans + request irregularity).
_register(WorkloadSpec(
    name="cassandra-phase0-core0", suite="CloudSuite", mean_instr_gap=207.0,
    components=(
        _replay(0.24, length=2000, region_pages=1000, run_length=2),
        _inter(0.14, (1, 3, 2), (4, 2), noise=0.08),
        _delta(0.10, (2, 7, 1), noise=0.10),
        _seq(0.12, stride=1),
        _chase(0.40, locality=0.3),
    )))

# CloudSuite cloud9: JavaScript server — highly diverse deltas, modest
# concentration, plenty of irregularity.
_register(WorkloadSpec(
    name="cloud9-phase0-core0", suite="CloudSuite", mean_instr_gap=208.0,
    components=(
        _replay(0.18, length=2000, region_pages=1000, run_length=2),
        _inter(0.12, (1, 5), (3, 2, 6), noise=0.10),
        _delta(0.08, (2, 8, 3), noise=0.10),
        _delta(0.08, (5, 1, 4), noise=0.10),
        _seq(0.10, stride=2),
        _chase(0.44, locality=0.4, local_jump_max=32),
    )))

# CloudSuite nutch: crawler/indexer — a few very strong patterns carry
# most of the deltas (top-5 covers ~85%), the rest is noise.
_register(WorkloadSpec(
    name="nutch-phase0-core0", suite="CloudSuite", mean_instr_gap=154.0,
    components=(
        _replay(0.20, length=1800, region_pages=900, run_length=3),
        _delta(0.26, (1, 2), noise=0.04),
        _delta(0.20, (2, 2, 1), noise=0.04),
        _seq(0.12, stride=1),
        _chase(0.22, locality=0.25),
    )))


#: Names of all eleven evaluation workloads, in the paper's table order.
WORKLOAD_NAMES: Tuple[str, ...] = (
    "cc-5",
    "bfs-10",
    "471-omnetpp-s1",
    "473-astar-s1",
    "450-soplex-s0",
    "482-sphinx-s0",
    "605-mcf-s1",
    "623-xalan-s1",
    "cassandra-phase0-core0",
    "cloud9-phase0-core0",
    "nutch-phase0-core0",
)


def get_workload_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by its paper trace name."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise ConfigError(f"unknown workload {name!r}; known: {known}") from None


def _mutate_pattern(pattern: Tuple[int, ...], phase: int) -> Tuple[int, ...]:
    """Shift a delta pattern's values for a later program phase.

    Adding to every delta changes the pattern's *delta vocabulary*
    wholesale, which is what defeats offline-trained models
    (Delta-LSTM's unseen-delta problem, paper §5) while online learners
    simply re-learn within a few hundred accesses (PATHFINDER's
    confidence counters "adapt to new patterns as the program moves
    between phases", §3.4).
    """
    if phase == 0:
        return pattern
    return tuple(min(50, d + 2 * phase) for d in pattern)


def _build_stream(component: Component, pc: int, region_page: int,
                  seed: int, phase: int = 0) -> AccessStream:
    params = dict(component.params)
    if phase:
        if "pattern" in params:
            params["pattern"] = _mutate_pattern(params["pattern"], phase)
        if "pattern_a" in params:
            params["pattern_a"] = _mutate_pattern(params["pattern_a"], phase)
            params["pattern_b"] = _mutate_pattern(params["pattern_b"], phase)
    if component.kind == "delta":
        return DeltaPatternStream(pc=pc, first_page=region_page,
                                  seed=seed, **params)
    if component.kind == "replay":
        return TemporalReplayStream(pc=pc, region_page=region_page,
                                    seed=seed, **params)
    if component.kind == "chase":
        return PointerChaseStream(pc=pc, region_page=region_page,
                                  seed=seed, **params)
    if component.kind == "seq":
        return SequentialStream(pc=pc, start_page=region_page, **params)
    if component.kind == "interleaved":
        return InterleavedPatternStream(pc_a=pc, pc_b=pc + 0x20,
                                        first_page=region_page,
                                        seed=seed, **params)
    raise ConfigError(f"unknown component kind {component.kind!r}")


def make_trace(name: str, n_accesses: int = 20_000, seed: int = 0,
               phases: int = 2) -> Trace:
    """Generate a synthetic trace for the named workload.

    Args:
        name: One of :data:`WORKLOAD_NAMES`.
        n_accesses: Number of loads to generate (the paper uses 1M; see
            the scale note in ``DESIGN.md``).
        seed: RNG seed; identical (name, n, seed, phases) reproduces the
            trace.
        phases: Program phases.  At each phase boundary the delta
            patterns shift their vocabulary and temporal sequences are
            re-recorded — the non-stationarity real programs exhibit,
            which the paper's online-vs-offline learning comparison
            hinges on.  1 = stationary.

    Returns:
        A :class:`~repro.types.Trace` in program order.
    """
    if phases < 1:
        raise ConfigError("phases must be >= 1")
    spec = get_workload_spec(name)
    # Assign each component a disjoint page region and a distinct PC so
    # streams never alias in tables keyed by pc/page.
    region_stride = 1 << 17  # 128K pages = 512 MB per component region
    segments: List[Tuple] = []
    instr_base = 0
    per_phase = n_accesses // phases
    for phase in range(phases):
        streams: List[Tuple[AccessStream, float]] = []
        for i, component in enumerate(spec.components):
            pc = 0x400000 + 0x40 * i
            # Replay (temporal) streams persist across phases — real
            # programs' recurring traversals outlive delta-phase shifts,
            # and SISB's record/replay strength depends on it.  Pattern
            # streams restart on fresh pages with a mutated vocabulary.
            if component.kind == "replay":
                region_page = (1 + i) * region_stride
                component_seed = seed * 1009 + i
            else:
                region_page = ((1 + i) * region_stride
                               + phase * (region_stride // 4))
                component_seed = seed * 1009 + i + phase * 7919
            streams.append((_build_stream(
                component, pc, region_page, seed=component_seed,
                phase=phase), component.weight))
        mixer = StreamMixer(streams, mean_instr_gap=spec.mean_instr_gap,
                            seed=seed + phase * 7919)
        length = per_phase if phase < phases - 1 else (
            n_accesses - per_phase * (phases - 1))
        # Phase segments come out already stamped above instr_base, so
        # chaining them is a plain column concatenation.
        instr_ids, pcs, addresses = mixer.columns(length,
                                                  instr_base=instr_base)
        segments.append((instr_ids, pcs, addresses))
        if len(instr_ids):
            instr_base = int(instr_ids[-1])
    if len(segments) == 1:
        instr_ids, pcs, addresses = segments[0]
    else:
        instr_ids = np.concatenate([s[0] for s in segments])
        pcs = np.concatenate([s[1] for s in segments])
        addresses = np.concatenate([s[2] for s in segments])
    return trace_from_columns(name, instr_ids, pcs, addresses)
