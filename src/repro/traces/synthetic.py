"""Synthetic access-stream primitives used to build workload generators.

Each *stream* is an infinite iterator of ``(pc, address)`` pairs with a
characteristic pattern class:

- :class:`SequentialStream` — next-line friendly linear scans.
- :class:`DeltaPatternStream` — a short repeating within-page delta
  pattern applied to a succession of *fresh* pages.  Delta prefetchers
  (PATHFINDER, SPP, BO, Pythia) can learn it; address-correlation
  prefetchers (SISB) cannot, because addresses never repeat.
- :class:`TemporalReplayStream` — an irregular address sequence recorded
  once and replayed verbatim.  SISB-style temporal prefetchers excel
  here; per-page delta prefetchers see noise.
- :class:`PointerChaseStream` — uniformly irregular accesses over a heap
  region; hard for everyone (the paper's mcf-like behaviour).

:class:`StreamMixer` interleaves weighted streams and stamps instruction
ids with a workload-specific mean gap, producing a :class:`~repro.types.Trace`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..types import BLOCKS_PER_PAGE, MemoryAccess, Trace, compose_address

PcAddr = Tuple[int, int]


class AccessStream:
    """Base class for infinite (pc, address) generators."""

    def __iter__(self) -> Iterator[PcAddr]:
        raise NotImplementedError


class SequentialStream(AccessStream):
    """Linear scan: consecutive blocks, crossing page boundaries naturally.

    Args:
        pc: Program counter to stamp on every access.
        start_page: First page of the scan region.
        stride: Block stride (default 1 = next-line).
        region_pages: Wrap around after this many pages.
    """

    def __init__(self, pc: int, start_page: int, stride: int = 1,
                 region_pages: int = 4096):
        if stride == 0:
            raise ConfigError("SequentialStream stride must be non-zero")
        self.pc = pc
        self.start_page = start_page
        self.stride = stride
        self.region_pages = region_pages

    def __iter__(self) -> Iterator[PcAddr]:
        block = self.start_page * BLOCKS_PER_PAGE
        limit = (self.start_page + self.region_pages) * BLOCKS_PER_PAGE
        while True:
            yield self.pc, block << 6
            block += self.stride
            if block >= limit or block < self.start_page * BLOCKS_PER_PAGE:
                block = self.start_page * BLOCKS_PER_PAGE


class DeltaPatternStream(AccessStream):
    """A repeating within-page delta pattern over a succession of fresh pages.

    Starting from a configurable offset in each page, offsets advance by
    the pattern's deltas (cycled).  When the next offset would leave the
    page, the stream moves to a fresh page (never revisited), so no
    address is ever repeated — only the *delta structure* recurs.

    Args:
        pc: Program counter for the stream.
        pattern: The repeating delta pattern (e.g. ``(1, 2, 3)``).
        first_page: First page of the (large) region the stream walks.
        start_offset: Offset of the first access in each page.
        noise: Probability that an individual delta is perturbed by ±1
            (models OoO reordering / control-flow noise).
        accesses_per_page: Optional cap on accesses before forcing a page
            change even if the pattern still fits.
        seed: RNG seed for the noise process.
    """

    def __init__(self, pc: int, pattern: Sequence[int], first_page: int,
                 start_offset: int = 0, noise: float = 0.0,
                 accesses_per_page: Optional[int] = None, seed: int = 0):
        if not pattern:
            raise ConfigError("DeltaPatternStream needs a non-empty pattern")
        if any(d == 0 for d in pattern):
            raise ConfigError("delta pattern must not contain zero deltas")
        self.pc = pc
        self.pattern = tuple(pattern)
        self.first_page = first_page
        self.start_offset = start_offset
        self.noise = noise
        self.accesses_per_page = accesses_per_page
        self.seed = seed

    def __iter__(self) -> Iterator[PcAddr]:
        rng = np.random.default_rng(self.seed)
        page = self.first_page
        while True:
            offset = self.start_offset
            count = 0
            pattern_pos = 0
            while 0 <= offset < BLOCKS_PER_PAGE:
                yield self.pc, compose_address(page, offset)
                count += 1
                if self.accesses_per_page and count >= self.accesses_per_page:
                    break
                delta = self.pattern[pattern_pos % len(self.pattern)]
                pattern_pos += 1
                if self.noise and rng.random() < self.noise:
                    delta += int(rng.integers(-1, 2))
                    if delta == 0:
                        delta = 1
                offset += delta
            page += 1


class InterleavedPatternStream(AccessStream):
    """Two delta-pattern walkers from *different PCs* sharing pages.

    Models the interference the paper motivates neural prefetching with
    (§2.3): two instruction streams traverse the same pages with their
    own delta patterns, randomly interleaved.  A PC-aware prefetcher
    (PATHFINDER's Training Table is keyed by pc+page) sees two clean
    streams; a page-keyed delta predictor (SPP's signatures) sees a
    corrupted mixture.

    Args:
        pc_a / pc_b: The two program counters.
        pattern_a / pattern_b: Each walker's repeating delta pattern.
        first_page: First page of the shared (fresh-page) region.
        noise: Per-delta perturbation probability, as in
            :class:`DeltaPatternStream`.
        seed: RNG seed for interleaving and noise.
    """

    def __init__(self, pc_a: int, pc_b: int, pattern_a: Sequence[int],
                 pattern_b: Sequence[int], first_page: int,
                 noise: float = 0.0, seed: int = 0):
        if not pattern_a or not pattern_b:
            raise ConfigError("both patterns must be non-empty")
        if any(d == 0 for d in tuple(pattern_a) + tuple(pattern_b)):
            raise ConfigError("delta patterns must not contain zero deltas")
        self.pc_a = pc_a
        self.pc_b = pc_b
        self.pattern_a = tuple(pattern_a)
        self.pattern_b = tuple(pattern_b)
        self.first_page = first_page
        self.noise = noise
        self.seed = seed

    def __iter__(self) -> Iterator[PcAddr]:
        rng = np.random.default_rng(self.seed)
        page = self.first_page
        while True:
            # Both walkers start at opposite ends of the same page so
            # they genuinely interleave without colliding immediately.
            walkers = [
                [self.pc_a, 0, 0, self.pattern_a],
                [self.pc_b, 1, 0, self.pattern_b],
            ]
            alive = [True, True]
            while any(alive):
                which = int(rng.integers(0, 2))
                if not alive[which]:
                    which = 1 - which
                pc, offset, pos, pattern = walkers[which]
                yield pc, compose_address(page, offset)
                delta = pattern[pos % len(pattern)]
                walkers[which][2] = pos + 1
                if self.noise and rng.random() < self.noise:
                    delta += int(rng.integers(-1, 2))
                    if delta == 0:
                        delta = 1
                offset += delta
                if 0 <= offset < BLOCKS_PER_PAGE:
                    walkers[which][1] = offset
                else:
                    alive[which] = False
            page += 1


class TemporalReplayStream(AccessStream):
    """An irregular address sequence replayed verbatim, forever.

    The recorded sequence jumps between random pages/offsets so per-page
    delta state is useless, but because the *exact* sequence repeats, an
    address-correlating (temporal) prefetcher learns it after one pass.

    Args:
        pc: Program counter for the stream.
        length: Number of addresses in the recorded sequence.
        region_page: Base page of the address region.
        region_pages: Number of pages addresses are drawn from.
        run_length: Consecutive-block run emitted at each random
            location (1 = fully irregular jumps; larger values model
            sweeps over dense structures that repeat temporally, and
            keep the stream's *distinct-delta* count low as the paper's
            Table 8 shows for sphinx/xalan-like workloads).
        offset_grid: Random offsets are snapped to multiples of this
            value, collapsing the page-revisit delta vocabulary (the
            structures real programs replay are aligned objects, not
            arbitrary bytes); 1 = no snapping.
        seed: RNG seed used to record the sequence.
    """

    def __init__(self, pc: int, length: int, region_page: int,
                 region_pages: int = 512, run_length: int = 1,
                 offset_grid: int = 1, seed: int = 0):
        if length < 2:
            raise ConfigError("TemporalReplayStream length must be >= 2")
        if run_length < 1:
            raise ConfigError("run_length must be >= 1")
        if offset_grid < 1 or offset_grid > BLOCKS_PER_PAGE:
            raise ConfigError("offset_grid must be in [1, blocks/page]")
        self.pc = pc
        rng = np.random.default_rng(seed)
        self.sequence: List[int] = []
        while len(self.sequence) < length:
            page = region_page + int(rng.integers(0, region_pages))
            offset = int(rng.integers(0, BLOCKS_PER_PAGE))
            offset -= offset % offset_grid
            for step in range(run_length):
                if offset + step >= BLOCKS_PER_PAGE:
                    break
                self.sequence.append(compose_address(page, offset + step))
                if len(self.sequence) >= length:
                    break

    def __iter__(self) -> Iterator[PcAddr]:
        while True:
            for addr in self.sequence:
                yield self.pc, addr


class PointerChaseStream(AccessStream):
    """Irregular pointer-chase: random walk over a heap with no repetition.

    Every access picks a fresh pseudo-random page and offset, so neither
    delta structure nor address correlation exists.  A small
    ``locality`` fraction of accesses stay in the current page with a
    random delta, which gives delta prefetchers a thin, noisy signal —
    the paper's mcf-like behaviour.

    Args:
        pc: Program counter for the stream.
        region_page: Base page of the heap region.
        region_pages: Size of the heap region, in pages.
        locality: Probability of staying within the current page.
        local_jump_max: Upper bound (exclusive) of the random in-page
            jump taken on local accesses; larger values raise the
            distinct-delta diversity (paper Table 8's cc/mcf profile).
        seed: RNG seed.
    """

    def __init__(self, pc: int, region_page: int, region_pages: int = 1 << 16,
                 locality: float = 0.2, local_jump_max: int = 8,
                 seed: int = 0):
        if local_jump_max < 2:
            raise ConfigError("local_jump_max must be >= 2")
        self.pc = pc
        self.region_page = region_page
        self.region_pages = region_pages
        self.locality = locality
        self.local_jump_max = local_jump_max
        self.seed = seed

    def __iter__(self) -> Iterator[PcAddr]:
        rng = np.random.default_rng(self.seed)
        page = self.region_page
        offset = 0
        while True:
            if rng.random() < self.locality:
                offset = int((offset + rng.integers(1, self.local_jump_max))
                             % BLOCKS_PER_PAGE)
            else:
                page = self.region_page + int(rng.integers(0, self.region_pages))
                offset = int(rng.integers(0, BLOCKS_PER_PAGE))
            yield self.pc, compose_address(page, offset)


class StreamMixer:
    """Interleave weighted access streams into a finite trace.

    Each emitted access is drawn from one stream chosen with probability
    proportional to its weight, and instruction ids advance by a
    geometric gap with the given mean, reproducing each benchmark's
    instructions-per-load density (paper Table 5).

    Args:
        streams: ``(stream, weight)`` pairs.
        mean_instr_gap: Mean instructions between consecutive loads.
        seed: RNG seed for stream selection and gap sampling.
    """

    def __init__(self, streams: Sequence[Tuple[AccessStream, float]],
                 mean_instr_gap: float = 10.0, seed: int = 0):
        if not streams:
            raise ConfigError("StreamMixer needs at least one stream")
        if mean_instr_gap < 1.0:
            raise ConfigError("mean_instr_gap must be >= 1")
        self.streams = list(streams)
        self.mean_instr_gap = mean_instr_gap
        self.seed = seed

    def generate(self, n_accesses: int, name: str = "synthetic") -> Trace:
        """Produce a trace of ``n_accesses`` interleaved loads."""
        rng = np.random.default_rng(self.seed)
        iters = [iter(s) for s, _ in self.streams]
        weights = np.array([w for _, w in self.streams], dtype=float)
        weights = weights / weights.sum()
        choices = rng.choice(len(iters), size=n_accesses, p=weights)
        # Geometric gaps with the requested mean (>= 1 instruction apart).
        p = min(1.0, 1.0 / self.mean_instr_gap)
        gaps = rng.geometric(p, size=n_accesses)
        accesses: List[MemoryAccess] = []
        instr_id = 0
        for idx, gap in zip(choices, gaps):
            instr_id += int(gap)
            pc, addr = next(iters[idx])
            accesses.append(MemoryAccess(instr_id=instr_id, pc=pc, address=addr))
        return Trace(name=name, accesses=accesses,
                     total_instructions=instr_id + 1)
