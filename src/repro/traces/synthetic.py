"""Synthetic access-stream primitives used to build workload generators.

Each *stream* is an infinite sequence of ``(pc, address)`` pairs with a
characteristic pattern class:

- :class:`SequentialStream` — next-line friendly linear scans.
- :class:`DeltaPatternStream` — a short repeating within-page delta
  pattern applied to a succession of *fresh* pages.  Delta prefetchers
  (PATHFINDER, SPP, BO, Pythia) can learn it; address-correlation
  prefetchers (SISB) cannot, because addresses never repeat.
- :class:`TemporalReplayStream` — an irregular address sequence recorded
  once and replayed verbatim.  SISB-style temporal prefetchers excel
  here; per-page delta prefetchers see noise.
- :class:`PointerChaseStream` — uniformly irregular accesses over a heap
  region; hard for everyone (the paper's mcf-like behaviour).

:class:`StreamMixer` interleaves weighted streams and stamps instruction
ids with a workload-specific mean gap, producing a
:class:`~repro.types.Trace`.

Generation is *batched*: every stream's core is a ``_batches()``
generator that emits ``(pc_column, address_column)`` numpy chunks, with
all randomness drawn as whole arrays per chunk instead of one scalar
``Generator`` call per access (scalar draws cost ~1µs each and used to
dominate generation time).  ``sample(n)`` concatenates chunks into flat
``int64`` columns for the mixer; ``__iter__`` adapts the same chunks to
the per-access protocol tests and ad-hoc callers use.  Batching changes
how the RNG stream is consumed, so traces differ in content (but not in
statistical shape) from the pre-batched scalar implementation at the
same seed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..types import (
    BLOCK_BITS,
    BLOCKS_PER_PAGE,
    PAGE_BITS,
    MemoryAccess,
    Trace,
    TraceArrays,
)

PcAddr = Tuple[int, int]

#: Preferred chunk size for batched generation.
_CHUNK = 2048


class AccessStream:
    """Base class for infinite (pc, address) generators.

    Subclasses implement :meth:`_batches`, an infinite generator of
    ``(pc_column, address_column)`` numpy ``int64`` chunk pairs (each
    chunk non-empty).  Iteration and column sampling are derived.
    """

    def _batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[PcAddr]:
        for pcs, addrs in self._batches():
            yield from zip(pcs.tolist(), addrs.tolist())

    def sample(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """The stream's first ``n`` accesses as flat int64 columns."""
        if n <= 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        pcs: List[np.ndarray] = []
        addrs: List[np.ndarray] = []
        got = 0
        for pc_col, addr_col in self._batches():
            pcs.append(pc_col)
            addrs.append(addr_col)
            got += len(addr_col)
            if got >= n:
                break
        return (np.concatenate(pcs)[:n].astype(np.int64, copy=False),
                np.concatenate(addrs)[:n].astype(np.int64, copy=False))


class SequentialStream(AccessStream):
    """Linear scan: consecutive blocks, crossing page boundaries naturally.

    Args:
        pc: Program counter to stamp on every access.
        start_page: First page of the scan region.
        stride: Block stride (default 1 = next-line).
        region_pages: Wrap around after this many pages.
    """

    def __init__(self, pc: int, start_page: int, stride: int = 1,
                 region_pages: int = 4096):
        if stride == 0:
            raise ConfigError("SequentialStream stride must be non-zero")
        self.pc = pc
        self.start_page = start_page
        self.stride = stride
        self.region_pages = region_pages

    def _batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        start_block = self.start_page * BLOCKS_PER_PAGE
        span = self.region_pages * BLOCKS_PER_PAGE
        # Steps before the scan wraps back to the region start.
        if self.stride > 0:
            period = max(1, -(-span // self.stride))
        else:
            period = 1
        pc_col = np.full(_CHUNK, self.pc, dtype=np.int64)
        steps = np.arange(_CHUNK, dtype=np.int64)
        k = 0
        while True:
            blocks = start_block + ((k + steps) % period) * self.stride
            yield pc_col, blocks << BLOCK_BITS
            k = (k + _CHUNK) % period


class DeltaPatternStream(AccessStream):
    """A repeating within-page delta pattern over a succession of fresh pages.

    Starting from a configurable offset in each page, offsets advance by
    the pattern's deltas (cycled).  When the next offset would leave the
    page, the stream moves to a fresh page (never revisited), so no
    address is ever repeated — only the *delta structure* recurs.

    Args:
        pc: Program counter for the stream.
        pattern: The repeating delta pattern (e.g. ``(1, 2, 3)``).
        first_page: First page of the (large) region the stream walks.
        start_offset: Offset of the first access in each page.
        noise: Probability that an individual delta is perturbed by ±1
            (models OoO reordering / control-flow noise).
        accesses_per_page: Optional cap on accesses before forcing a page
            change even if the pattern still fits.
        seed: RNG seed for the noise process.
    """

    def __init__(self, pc: int, pattern: Sequence[int], first_page: int,
                 start_offset: int = 0, noise: float = 0.0,
                 accesses_per_page: Optional[int] = None, seed: int = 0):
        if not pattern:
            raise ConfigError("DeltaPatternStream needs a non-empty pattern")
        if any(d == 0 for d in pattern):
            raise ConfigError("delta pattern must not contain zero deltas")
        self.pc = pc
        self.pattern = tuple(pattern)
        self.first_page = first_page
        self.start_offset = start_offset
        self.noise = noise
        self.accesses_per_page = accesses_per_page
        self.seed = seed

    def _page_offsets(self, rng: np.random.Generator,
                      length_hint: int) -> np.ndarray:
        """One page's offset sequence (noise drawn as whole arrays)."""
        pattern = np.asarray(self.pattern, dtype=np.int64)
        steps = length_hint
        while True:
            deltas = np.tile(pattern, -(-steps // len(pattern)))[:steps]
            if self.noise:
                perturbed = deltas + rng.integers(-1, 2, size=steps)
                perturbed[perturbed == 0] = 1
                deltas = np.where(rng.random(steps) < self.noise,
                                  perturbed, deltas)
            offsets = self.start_offset + np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(deltas)))
            outside = (offsets < 0) | (offsets >= BLOCKS_PER_PAGE)
            if outside.any():
                offsets = offsets[:int(np.argmax(outside))]
            elif self.accesses_per_page is None:
                # Pattern still inside the page after `steps` deltas;
                # widen the window (only possible with mixed-sign
                # patterns that wander without escaping).
                if steps > 1 << 15:
                    raise ConfigError(
                        "delta pattern never leaves its page")
                steps *= 2
                continue
            if self.accesses_per_page:
                offsets = offsets[:self.accesses_per_page]
            return offsets

    def _batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self.seed)
        if not (0 <= self.start_offset < BLOCKS_PER_PAGE):
            raise ConfigError("start_offset outside the page")
        length_hint = (self.accesses_per_page
                       or BLOCKS_PER_PAGE + len(self.pattern))
        page = self.first_page
        while True:
            offsets = self._page_offsets(rng, length_hint)
            addrs = (page << PAGE_BITS) | (offsets << BLOCK_BITS)
            yield np.full(len(addrs), self.pc, dtype=np.int64), addrs
            page += 1


class InterleavedPatternStream(AccessStream):
    """Two delta-pattern walkers from *different PCs* sharing pages.

    Models the interference the paper motivates neural prefetching with
    (§2.3): two instruction streams traverse the same pages with their
    own delta patterns, randomly interleaved.  A PC-aware prefetcher
    (PATHFINDER's Training Table is keyed by pc+page) sees two clean
    streams; a page-keyed delta predictor (SPP's signatures) sees a
    corrupted mixture.

    Args:
        pc_a / pc_b: The two program counters.
        pattern_a / pattern_b: Each walker's repeating delta pattern.
        first_page: First page of the shared (fresh-page) region.
        noise: Per-delta perturbation probability, as in
            :class:`DeltaPatternStream`.
        seed: RNG seed for interleaving and noise.
    """

    def __init__(self, pc_a: int, pc_b: int, pattern_a: Sequence[int],
                 pattern_b: Sequence[int], first_page: int,
                 noise: float = 0.0, seed: int = 0):
        if not pattern_a or not pattern_b:
            raise ConfigError("both patterns must be non-empty")
        if any(d == 0 for d in tuple(pattern_a) + tuple(pattern_b)):
            raise ConfigError("delta patterns must not contain zero deltas")
        self.pc_a = pc_a
        self.pc_b = pc_b
        self.pattern_a = tuple(pattern_a)
        self.pattern_b = tuple(pattern_b)
        self.first_page = first_page
        self.noise = noise
        self.seed = seed

    def _batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self.seed)
        noise = self.noise
        page = self.first_page
        # Worst case both walkers take unit steps across the page, so
        # one page consumes at most ~2*BLOCKS_PER_PAGE interleaving
        # draws; one batched draw per page replaces them all.
        draws = 2 * BLOCKS_PER_PAGE + 4
        while True:
            which_arr = rng.integers(0, 2, size=draws).tolist()
            perturb = (rng.integers(-1, 2, size=draws).tolist()
                       if noise else None)
            u = rng.random(draws).tolist() if noise else None
            # Both walkers start at opposite ends of the same page so
            # they genuinely interleave without colliding immediately.
            walkers = [
                [self.pc_a, 0, 0, self.pattern_a],
                [self.pc_b, 1, 0, self.pattern_b],
            ]
            alive = [True, True]
            base = page << PAGE_BITS
            pcs: List[int] = []
            addrs: List[int] = []
            step = 0
            while alive[0] or alive[1]:
                which = which_arr[step]
                if not alive[which]:
                    which = 1 - which
                pc, offset, pos, pattern = walkers[which]
                pcs.append(pc)
                addrs.append(base | (offset << BLOCK_BITS))
                delta = pattern[pos % len(pattern)]
                walkers[which][2] = pos + 1
                if noise and u[step] < noise:
                    delta += perturb[step]
                    if delta == 0:
                        delta = 1
                step += 1
                offset += delta
                if 0 <= offset < BLOCKS_PER_PAGE:
                    walkers[which][1] = offset
                else:
                    alive[which] = False
            yield (np.asarray(pcs, dtype=np.int64),
                   np.asarray(addrs, dtype=np.int64))
            page += 1


class TemporalReplayStream(AccessStream):
    """An irregular address sequence replayed verbatim, forever.

    The recorded sequence jumps between random pages/offsets so per-page
    delta state is useless, but because the *exact* sequence repeats, an
    address-correlating (temporal) prefetcher learns it after one pass.

    Args:
        pc: Program counter for the stream.
        length: Number of addresses in the recorded sequence.
        region_page: Base page of the address region.
        region_pages: Number of pages addresses are drawn from.
        run_length: Consecutive-block run emitted at each random
            location (1 = fully irregular jumps; larger values model
            sweeps over dense structures that repeat temporally, and
            keep the stream's *distinct-delta* count low as the paper's
            Table 8 shows for sphinx/xalan-like workloads).
        offset_grid: Random offsets are snapped to multiples of this
            value, collapsing the page-revisit delta vocabulary (the
            structures real programs replay are aligned objects, not
            arbitrary bytes); 1 = no snapping.
        seed: RNG seed used to record the sequence.
    """

    def __init__(self, pc: int, length: int, region_page: int,
                 region_pages: int = 512, run_length: int = 1,
                 offset_grid: int = 1, seed: int = 0):
        if length < 2:
            raise ConfigError("TemporalReplayStream length must be >= 2")
        if run_length < 1:
            raise ConfigError("run_length must be >= 1")
        if offset_grid < 1 or offset_grid > BLOCKS_PER_PAGE:
            raise ConfigError("offset_grid must be in [1, blocks/page]")
        self.pc = pc
        rng = np.random.default_rng(seed)
        parts: List[np.ndarray] = []
        recorded = 0
        steps = np.arange(run_length, dtype=np.int64)
        while recorded < length:
            draws = max(8, -(-(length - recorded) // run_length))
            pages = region_page + rng.integers(0, region_pages, size=draws)
            offsets = rng.integers(0, BLOCKS_PER_PAGE, size=draws)
            offsets -= offsets % offset_grid
            # Expand each draw into its run, dropping the steps that
            # would cross the page boundary (row order = draw order).
            run_offsets = offsets[:, None] + steps[None, :]
            addresses = ((pages[:, None] << PAGE_BITS)
                         | (run_offsets << BLOCK_BITS))
            chunk = addresses[run_offsets < BLOCKS_PER_PAGE]
            parts.append(chunk)
            recorded += len(chunk)
        recording = np.concatenate(parts)[:length].astype(np.int64,
                                                          copy=False)
        self._recording = recording
        self.sequence: List[int] = recording.tolist()
        self._pc_col = np.full(length, pc, dtype=np.int64)

    def _batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self._pc_col, self._recording


class PointerChaseStream(AccessStream):
    """Irregular pointer-chase: random walk over a heap with no repetition.

    Every access picks a fresh pseudo-random page and offset, so neither
    delta structure nor address correlation exists.  A small
    ``locality`` fraction of accesses stay in the current page with a
    random delta, which gives delta prefetchers a thin, noisy signal —
    the paper's mcf-like behaviour.

    Args:
        pc: Program counter for the stream.
        region_page: Base page of the heap region.
        region_pages: Size of the heap region, in pages.
        locality: Probability of staying within the current page.
        local_jump_max: Upper bound (exclusive) of the random in-page
            jump taken on local accesses; larger values raise the
            distinct-delta diversity (paper Table 8's cc/mcf profile).
        seed: RNG seed.
    """

    def __init__(self, pc: int, region_page: int, region_pages: int = 1 << 16,
                 locality: float = 0.2, local_jump_max: int = 8,
                 seed: int = 0):
        if local_jump_max < 2:
            raise ConfigError("local_jump_max must be >= 2")
        self.pc = pc
        self.region_page = region_page
        self.region_pages = region_pages
        self.locality = locality
        self.local_jump_max = local_jump_max
        self.seed = seed

    def _batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self.seed)
        pc_col = np.full(_CHUNK, self.pc, dtype=np.int64)
        indices = np.arange(_CHUNK)
        carry_page = self.region_page
        carry_offset = 0
        while True:
            local = rng.random(_CHUNK) < self.locality
            jumps = rng.integers(1, self.local_jump_max, size=_CHUNK)
            fresh_pages = self.region_page + rng.integers(
                0, self.region_pages, size=_CHUNK)
            fresh_offsets = rng.integers(0, BLOCKS_PER_PAGE, size=_CHUNK)
            # Each access either jumps to a fresh (page, offset) or adds
            # a jump to the previous offset within the current page.  A
            # local run's offsets are its anchor's offset plus the
            # cumulative jumps since the anchor (mod page size); the
            # anchor is the most recent non-local access, or the carry
            # state from the previous chunk.
            anchor = np.maximum.accumulate(np.where(~local, indices, -1))
            anchored = anchor >= 0
            safe_anchor = np.maximum(anchor, 0)
            local_jumps = np.where(local, jumps, 0)
            jump_sum = np.cumsum(local_jumps)
            base_offset = np.where(anchored, fresh_offsets[safe_anchor],
                                   carry_offset)
            base_sum = np.where(anchored, jump_sum[safe_anchor], 0)
            offsets = (base_offset + jump_sum - base_sum) % BLOCKS_PER_PAGE
            pages = np.where(anchored, fresh_pages[safe_anchor], carry_page)
            carry_page = int(pages[-1])
            carry_offset = int(offsets[-1])
            yield pc_col, (pages << PAGE_BITS) | (offsets << BLOCK_BITS)


class StreamMixer:
    """Interleave weighted access streams into a finite trace.

    Each emitted access is drawn from one stream chosen with probability
    proportional to its weight, and instruction ids advance by a
    geometric gap with the given mean, reproducing each benchmark's
    instructions-per-load density (paper Table 5).

    Args:
        streams: ``(stream, weight)`` pairs.
        mean_instr_gap: Mean instructions between consecutive loads.
        seed: RNG seed for stream selection and gap sampling.
    """

    def __init__(self, streams: Sequence[Tuple[AccessStream, float]],
                 mean_instr_gap: float = 10.0, seed: int = 0):
        if not streams:
            raise ConfigError("StreamMixer needs at least one stream")
        if mean_instr_gap < 1.0:
            raise ConfigError("mean_instr_gap must be >= 1")
        self.streams = list(streams)
        self.mean_instr_gap = mean_instr_gap
        self.seed = seed

    def columns(self, n_accesses: int, instr_base: int = 0
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate ``(instr_ids, pcs, addresses)`` int64 columns.

        Instruction ids start strictly above ``instr_base`` so phase
        segments can be chained without re-stamping.
        """
        rng = np.random.default_rng(self.seed)
        n_streams = len(self.streams)
        weights = np.array([w for _, w in self.streams], dtype=float)
        weights = weights / weights.sum()
        choices = rng.choice(n_streams, size=n_accesses, p=weights)
        # Geometric gaps with the requested mean (>= 1 instruction apart).
        p = min(1.0, 1.0 / self.mean_instr_gap)
        gaps = rng.geometric(p, size=n_accesses)
        instr_ids = instr_base + np.cumsum(gaps, dtype=np.int64)
        pcs = np.empty(n_accesses, dtype=np.int64)
        addresses = np.empty(n_accesses, dtype=np.int64)
        counts = np.bincount(choices, minlength=n_streams)
        for i, (stream, _) in enumerate(self.streams):
            count = int(counts[i])
            if not count:
                continue
            mask = choices == i
            pc_col, addr_col = stream.sample(count)
            pcs[mask] = pc_col
            addresses[mask] = addr_col
        return instr_ids, pcs, addresses

    def generate(self, n_accesses: int, name: str = "synthetic") -> Trace:
        """Produce a trace of ``n_accesses`` interleaved loads."""
        instr_ids, pcs, addresses = self.columns(n_accesses)
        return trace_from_columns(name, instr_ids, pcs, addresses)


def trace_from_columns(name: str, instr_ids: np.ndarray, pcs: np.ndarray,
                       addresses: np.ndarray) -> Trace:
    """Build a :class:`Trace` from flat columns, pre-seeding its
    struct-of-arrays view so replay never re-extracts it."""
    accesses = [
        MemoryAccess(instr_id=i, pc=p, address=a)
        for i, p, a in zip(instr_ids.tolist(), pcs.tolist(),
                           addresses.tolist())
    ]
    total = int(instr_ids[-1]) + 1 if len(instr_ids) else 0
    trace = Trace(name=name, accesses=accesses, total_instructions=total)
    trace._arrays = TraceArrays.from_columns(instr_ids, pcs, addresses)
    return trace
