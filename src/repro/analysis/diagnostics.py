"""Post-run prefetcher diagnostics.

Answers the questions the paper's §5 discussion asks of each
prefetcher: how aggressive was it, how timely were its prefetches, how
much of its issue budget was wasted, and how does that explain its IPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..sim.metrics import SimResult


@dataclass(frozen=True)
class PrefetchDiagnosis:
    """Derived diagnostic view of one simulation result.

    Attributes:
        prefetcher: Prefetcher name.
        issue_rate: Issued prefetches per demand load.
        accuracy: Useful / issued.
        late_fraction: Fraction of useful prefetches that were still in
            flight when demanded (issued too late to hide full latency).
        wasted: Prefetches evicted unused (bandwidth thrown away).
        speedup: IPC over the supplied baseline (0 if none given).
        verdict: One-line qualitative classification.
    """

    prefetcher: str
    issue_rate: float
    accuracy: float
    late_fraction: float
    wasted: int
    speedup: float
    verdict: str


def _classify(issue_rate: float, accuracy: float,
              late_fraction: float) -> str:
    if issue_rate < 0.05:
        return "mostly silent (no learnable pattern or still training)"
    if accuracy >= 0.8 and issue_rate < 0.8:
        return "selective and precise (PATHFINDER/SPP-like profile)"
    if accuracy < 0.4 and issue_rate > 1.0:
        return "aggressive and wasteful (spends bandwidth exploring)"
    if late_fraction > 0.5:
        return "accurate but late (predictions arrive with the demand)"
    return "balanced"


def diagnose(result: SimResult,
             baseline: Optional[SimResult] = None) -> PrefetchDiagnosis:
    """Build a :class:`PrefetchDiagnosis` from a simulation result."""
    loads = max(1, result.loads)
    issued = result.pf_issued
    useful = max(1, result.pf_useful)
    issue_rate = issued / loads
    accuracy = result.accuracy()
    late_fraction = result.pf_late / useful if result.pf_useful else 0.0
    speedup = (result.ipc / baseline.ipc
               if baseline is not None and baseline.ipc else 0.0)
    return PrefetchDiagnosis(
        prefetcher=result.prefetcher_name,
        issue_rate=issue_rate,
        accuracy=accuracy,
        late_fraction=late_fraction,
        wasted=int(result.extra.get("pf_unused_evicted", 0)),
        speedup=speedup,
        verdict=_classify(issue_rate, accuracy, late_fraction))


def compare(diagnoses: Sequence[PrefetchDiagnosis]) -> List[List[str]]:
    """Rows for :func:`repro.harness.reporting.format_table`."""
    rows: List[List[str]] = []
    for d in diagnoses:
        rows.append([d.prefetcher, f"{d.issue_rate:.2f}",
                     f"{d.accuracy:.2f}", f"{d.late_fraction:.2f}",
                     str(d.wasted), f"{d.speedup:.3f}", d.verdict])
    return rows
