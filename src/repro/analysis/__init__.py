"""Trace and prefetcher analysis tooling.

- :mod:`repro.analysis.trace_stats` — the statistics the paper uses to
  characterise workloads (Tables 5, 7, 8): delta histograms and range
  occupancy, per-window distinct-delta counts, address reuse, working
  set, instruction density.
- :mod:`repro.analysis.diagnostics` — post-run prefetcher diagnostics:
  per-prefetcher issue/usefulness breakdowns and side-by-side reports.
"""

from .trace_stats import (
    DeltaStatistics,
    TraceProfile,
    delta_histogram,
    delta_statistics,
    profile_trace,
    reuse_fraction,
)
from .diagnostics import PrefetchDiagnosis, diagnose

__all__ = [
    "DeltaStatistics",
    "TraceProfile",
    "delta_histogram",
    "delta_statistics",
    "profile_trace",
    "reuse_fraction",
    "PrefetchDiagnosis",
    "diagnose",
]
