"""Workload-characterisation statistics (paper Tables 5, 7, 8).

These are the numbers the paper uses to explain *why* each prefetcher
behaves as it does on each benchmark: how dense the within-page delta
stream is, how concentrated it is on a few values, how much of it fits
in a reduced delta range, and how much raw address reuse exists for
temporal prefetchers to exploit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigError
from ..types import MAX_DELTA, Trace


@dataclass(frozen=True)
class DeltaStatistics:
    """Per-window delta statistics (the paper's Table 8 columns).

    Attributes:
        avg_deltas: Mean within-page deltas per window.
        avg_distinct: Mean distinct delta values per window.
        avg_top5: Mean summed occurrences of the 5 most frequent
            distinct deltas per window.
        window: Window size in accesses.
    """

    avg_deltas: float
    avg_distinct: float
    avg_top5: float
    window: int


@dataclass(frozen=True)
class TraceProfile:
    """A full workload characterisation.

    Attributes:
        name: Trace name.
        loads: Number of demand loads.
        instructions: Total instructions (Table 5).
        instructions_per_load: Mean instruction gap.
        unique_blocks: Distinct cache blocks touched.
        unique_pages: Distinct pages touched.
        reuse_fraction: Fraction of accesses to a previously-seen block
            (what temporal prefetchers can possibly exploit).
        deltas_total: Total in-range within-page deltas (Table 7 base).
        deltas_in_31: Deltas with |d| < 31 (Table 7).
        deltas_in_15: Deltas with |d| < 15 (Table 7).
        delta_stats: Windowed statistics (Table 8).
    """

    name: str
    loads: int
    instructions: int
    instructions_per_load: float
    unique_blocks: int
    unique_pages: int
    reuse_fraction: float
    deltas_total: int
    deltas_in_31: int
    deltas_in_15: int
    delta_stats: DeltaStatistics


def delta_histogram(trace: Trace) -> Dict[int, int]:
    """Histogram of within-page deltas (per pc/page stream)."""
    return dict(Counter(trace.deltas_within_page()))


def reuse_fraction(trace: Trace) -> float:
    """Fraction of accesses whose block was accessed before."""
    if not len(trace):
        raise ConfigError("cannot profile an empty trace")
    seen = set()
    repeats = 0
    for access in trace:
        if access.block in seen:
            repeats += 1
        seen.add(access.block)
    return repeats / len(trace)


def delta_statistics(trace: Trace, window: int = 1000) -> DeltaStatistics:
    """Windowed delta statistics exactly as the paper's Table 8 counts
    them: within-page per-(pc, page) deltas, grouped into fixed-size
    access windows."""
    if window < 1:
        raise ConfigError("window must be >= 1")
    last_offset: Dict[Tuple[int, int], int] = {}
    windows: List[List[int]] = [[]]
    for index, access in enumerate(trace):
        if index and index % window == 0:
            windows.append([])
        key = (access.pc, access.page)
        previous = last_offset.get(key)
        if previous is not None:
            delta = access.offset - previous
            if delta != 0 and abs(delta) <= MAX_DELTA:
                windows[-1].append(delta)
        last_offset[key] = access.offset

    counts, distincts, top5s = [], [], []
    for deltas in windows:
        counts.append(len(deltas))
        values, occurrences = np.unique(deltas, return_counts=True)
        distincts.append(values.size)
        top5s.append(float(np.sort(occurrences)[::-1][:5].sum())
                     if values.size else 0.0)
    return DeltaStatistics(
        avg_deltas=float(np.mean(counts)),
        avg_distinct=float(np.mean(distincts)),
        avg_top5=float(np.mean(top5s)),
        window=window)


def profile_trace(trace: Trace, window: int = 1000) -> TraceProfile:
    """Compute the full characterisation of one trace."""
    if not len(trace):
        raise ConfigError("cannot profile an empty trace")
    deltas = np.asarray(trace.deltas_within_page())
    blocks = {a.block for a in trace}
    pages = {a.page for a in trace}
    return TraceProfile(
        name=trace.name,
        loads=len(trace),
        instructions=trace.instruction_count,
        instructions_per_load=trace.instruction_count / len(trace),
        unique_blocks=len(blocks),
        unique_pages=len(pages),
        reuse_fraction=reuse_fraction(trace),
        deltas_total=int(deltas.size),
        deltas_in_31=int(np.sum(np.abs(deltas) < 31)) if deltas.size else 0,
        deltas_in_15=int(np.sum(np.abs(deltas) < 15)) if deltas.size else 0,
        delta_stats=delta_statistics(trace, window=window))
