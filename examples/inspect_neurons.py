"""Look inside a trained PATHFINDER: what did each neuron learn?

Trains PATHFINDER on a workload, then decodes each specialised
neuron's receptive field — the delta history its weights are tuned to
— alongside its Inference-Table labels and adaptive threshold.  This
is the Diehl & Cook "digit receptive field" view, applied to address
deltas (see ``repro.snn.introspection``).

Usage::

    python examples/inspect_neurons.py [workload] [n_accesses]
"""

import sys

from repro.core import PathfinderPrefetcher
from repro.harness import format_table
from repro.prefetchers import generate_prefetches
from repro.snn.introspection import specialised_neurons
from repro.traces import make_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "473-astar-s1"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    print(f"Training PATHFINDER on {workload} ({n_accesses} loads) ...")
    trace = make_trace(workload, n_accesses, seed=1)
    prefetcher = PathfinderPrefetcher()
    generate_prefetches(prefetcher, trace)

    fields = specialised_neurons(prefetcher, min_concentration=0.05)
    rows = []
    for field in fields[:15]:
        rows.append([
            field.neuron,
            "{" + ", ".join(map(str, field.deltas)) + "}",
            f"{field.concentration:.2f}",
            f"{field.theta:.1f}",
            ", ".join(map(str, field.labels)) or "-",
        ])
    print()
    print(format_table(
        ["Neuron", "Learned delta history", "Concentration", "Theta",
         "Labels (next delta)"],
        rows, title=f"Top specialised neurons after {workload}"))
    print()
    print(f"{len(fields)} of {prefetcher.config.n_neurons} neurons "
          f"specialised; {prefetcher.inference_table.occupancy()} labels "
          f"live.")


if __name__ == "__main__":
    main()
