"""Explore PATHFINDER's performance/area/power design space.

Sweeps the two knobs the paper identifies as the biggest cost levers —
delta range and neuron count (§5, Table 9) — measuring IPC on a
workload while pricing each design point with the hardware cost model
calibrated to the paper's synthesis results.

Usage::

    python examples/hardware_budget.py [workload]
"""

import sys

from repro.core import PathfinderConfig, PathfinderPrefetcher
from repro.harness import Evaluation, format_table
from repro.harness.runner import run_prefetcher
from repro.hw import pathfinder_cost


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cc-5"
    evaluation = Evaluation(n_accesses=12_000, seed=1)
    trace = evaluation.trace(workload)
    baseline = evaluation.baseline(workload)

    rows = []
    for n_neurons in (10, 50):
        for delta_range in (31, 63, 127):
            config = PathfinderConfig(n_neurons=n_neurons,
                                      delta_range=delta_range)
            row = run_prefetcher(trace, PathfinderPrefetcher(config),
                                 baseline, hierarchy=evaluation.hierarchy)
            cost = pathfinder_cost(n_pe=n_neurons, delta_range=delta_range)
            rows.append([f"{n_neurons} neurons, D={delta_range}",
                         row.speedup, row.accuracy, row.coverage,
                         cost.area_mm2, cost.power_w])

    print(format_table(
        ["Design point", "IPC speedup", "Accuracy", "Coverage",
         "Area mm2", "Power W"],
        rows, title=f"PATHFINDER design space on {workload}"))
    print()
    print("The paper's observation (§5/Table 9): shrinking the delta range")
    print("and neuron count cuts cost dramatically while accuracy holds;")
    print("coverage (and so IPC) pays for very small delta ranges.")


if __name__ == "__main__":
    main()
