"""Quickstart: run PATHFINDER on a synthetic workload and print metrics.

Usage::

    python examples/quickstart.py [workload] [n_accesses]

Generates one of the paper's calibrated workloads, runs the PATHFINDER
prefetcher over it to produce a prefetch file (the ML-DPC two-phase
flow), replays trace + prefetches through the cache/CPU simulator, and
reports IPC speedup, accuracy, and coverage against a no-prefetch
baseline.
"""

import sys

from repro import HierarchyConfig, PathfinderPrefetcher, make_trace, simulate
from repro.prefetchers import generate_prefetches


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cc-5"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"Generating {n_accesses} loads of workload {workload!r} ...")
    trace = make_trace(workload, n_accesses, seed=1)
    hierarchy = HierarchyConfig.scaled()

    print("Running no-prefetch baseline ...")
    baseline = simulate(trace, config=hierarchy)

    print("Running PATHFINDER (SNN/STDP, 1-tick mode, degree 2) ...")
    prefetcher = PathfinderPrefetcher()
    requests = generate_prefetches(prefetcher, trace)
    result = simulate(trace, requests, config=hierarchy,
                      prefetcher_name="pathfinder")

    print()
    print(f"  baseline IPC : {baseline.ipc:8.3f}")
    print(f"  PATHFINDER   : {result.ipc:8.3f}  "
          f"({100 * (result.ipc / baseline.ipc - 1):+.1f}%)")
    print(f"  issued       : {result.pf_issued}")
    print(f"  useful       : {result.pf_useful}")
    print(f"  accuracy     : {result.accuracy():.3f}")
    print(f"  coverage     : {result.coverage(baseline.llc_misses):.3f}")
    print(f"  SNN queries  : {prefetcher.snn_queries}")
    print(f"  labels live  : {prefetcher.inference_table.occupancy()}")


if __name__ == "__main__":
    main()
