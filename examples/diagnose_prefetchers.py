"""Diagnose *why* each prefetcher behaves as it does on a workload.

Uses the analysis toolkit to print each prefetcher's behavioural
profile — issue rate, accuracy, lateness, wasted prefetches — with a
one-line verdict, reproducing the kind of reasoning the paper's §5
discussion applies (e.g. "Pythia is a more aggressive prefetcher ...
PATHFINDER is quite selective in issuing prefetches").

Usage::

    python examples/diagnose_prefetchers.py [workload]
"""

import sys

from repro.analysis import diagnose, profile_trace
from repro.analysis.diagnostics import compare
from repro.harness import Evaluation, format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "605-mcf-s1"
    evaluation = Evaluation(n_accesses=16_000, seed=1)
    trace = evaluation.trace(workload)
    baseline = evaluation.baseline(workload)

    profile = profile_trace(trace)
    print(f"{workload}: {profile.loads} loads, "
          f"{profile.delta_stats.avg_deltas:.0f} in-page deltas / 1K "
          f"({profile.delta_stats.avg_distinct:.0f} distinct), "
          f"block reuse {profile.reuse_fraction:.2f}")
    print()

    diagnoses = []
    for name in ("nextline", "spp", "sisb", "pythia", "pathfinder"):
        row = evaluation.run(workload, name)
        diagnoses.append(diagnose(row.result, baseline))

    print(format_table(
        ["Prefetcher", "Issue rate", "Accuracy", "Late frac",
         "Wasted", "Speedup", "Verdict"],
        compare(diagnoses),
        title=f"Prefetcher behaviour on {workload}"))


if __name__ == "__main__":
    main()
