"""Co-run two programs over a shared LLC and measure the damage.

Uses the multicore simulation mode: each program keeps its private
L1/L2 and timing model, but the LLC and DRAM banks are shared — one
program's streaming evicts the other's working set, and prefetch
traffic competes for bandwidth (the paper's §2.3 interference
motivation, at the timing level).

Usage::

    python examples/corun_interference.py [workload_a] [workload_b]
"""

import sys

from repro.core import PathfinderPrefetcher
from repro.harness import format_table
from repro.prefetchers import generate_prefetches
from repro.sim import simulate, simulate_multicore
from repro.sim.simulator import HierarchyConfig
from repro.traces import make_trace


def main() -> None:
    workload_a = sys.argv[1] if len(sys.argv) > 1 else "473-astar-s1"
    workload_b = sys.argv[2] if len(sys.argv) > 2 else "482-sphinx-s0"
    hierarchy = HierarchyConfig.scaled()

    trace_a = make_trace(workload_a, 8000, seed=1)
    trace_b = make_trace(workload_b, 8000, seed=2)

    solo = {t.name: simulate(t, config=hierarchy) for t in (trace_a, trace_b)}
    corun = simulate_multicore([trace_a, trace_b], config=hierarchy)

    files = [generate_prefetches(PathfinderPrefetcher(), t)
             for t in (trace_a, trace_b)]
    corun_pf = simulate_multicore([trace_a, trace_b], files,
                                  config=hierarchy)

    rows = []
    for i, trace in enumerate((trace_a, trace_b)):
        rows.append([
            trace.name,
            solo[trace.name].ipc,
            corun.per_core[i].ipc,
            corun_pf.per_core[i].ipc,
        ])
    print(format_table(
        ["Program", "solo IPC", "co-run IPC", "co-run + PATHFINDER"],
        rows, title="Shared-LLC interference"))
    solo_ipcs = [solo[trace_a.name].ipc, solo[trace_b.name].ipc]
    print()
    print(f"weighted speedup, no prefetch : "
          f"{corun.weighted_speedup(solo_ipcs):.3f} / 2.0")
    print(f"weighted speedup, PATHFINDER  : "
          f"{corun_pf.weighted_speedup(solo_ipcs):.3f} / 2.0")


if __name__ == "__main__":
    main()
