"""Watch the SNN learn a delta pattern in real time (paper §3.6).

Reproduces the paper's Table 2 / Figure 3 demonstration: the pattern
{1, 2, 4} is presented repeatedly to a freshly initialised network;
one neuron self-organises to detect it (firing at earlier and earlier
ticks), noisy variants may or may not recruit other neurons, and the
original pattern still maps to its neuron afterwards.

Usage::

    python examples/snn_learning_demo.py
"""

from repro.core import PathfinderConfig, PathfinderPrefetcher


def main() -> None:
    config = PathfinderConfig(one_tick=False, seed=3)
    prefetcher = PathfinderPrefetcher(config)
    network = prefetcher.network
    encoder = prefetcher.encoder

    schedule = ([(1, 2, 4)] * 6
                + [(1, 3, 4), (1, 2, 5), (1, 4, 2), (1, 3, 6)]
                + [(1, 2, 4)])

    header = (f"{'input pattern':16s} {'firing neuron':>13s} "
              f"{'firing tick':>11s} {'next-best potential':>20s}")
    print(header)
    print("-" * len(header))
    for pattern in schedule:
        rates = encoder.encode(list(pattern))
        record = network.present(rates)
        neuron = record.winner if record.winner is not None else "-"
        tick = (record.first_spike_tick
                if record.first_spike_tick is not None else "-")
        print(f"{{{', '.join(map(str, pattern))}}}".ljust(16)
              + f" {str(neuron):>13s} {str(tick):>11s} "
              f"{record.next_best_potential:>20.2f}")

    print()
    print("Note how the same neuron fires for every {1, 2, 4} presentation")
    print("and STDP + lateral inhibition push the next-best neuron's")
    print("potential further below threshold (paper Table 2, Figure 3).")


if __name__ == "__main__":
    main()
