"""Graph-analytics scenario: why neural delta prefetching wins on GAP.

The paper's motivating case (§5): graph workloads like connected
components (cc) and BFS traverse *fresh* pages with *recurring delta
structure* — addresses never repeat, so temporal record/replay (SISB)
has nothing to replay, while PATHFINDER's SNN recognises the delta
patterns and keeps covering misses.  Conversely, on a temporally
repeating workload (xalan-like), SISB dominates.

Usage::

    python examples/graph_analytics.py
"""

from repro.harness import Evaluation, format_table


def main() -> None:
    evaluation = Evaluation(n_accesses=16_000, seed=1)
    prefetchers = ("sisb", "spp", "pythia", "pathfinder")
    rows = []
    for workload in ("cc-5", "bfs-10", "473-astar-s1", "623-xalan-s1"):
        row = [workload]
        for name in prefetchers:
            result = evaluation.run(workload, name)
            row.append(f"{result.speedup:.3f} / {result.coverage:.2f}")
        rows.append(row)

    print(format_table(
        ["Workload"] + [f"{p} (speedup/cov)" for p in prefetchers], rows,
        title="Fresh-page graph workloads vs a temporal workload"))
    print()
    print("cc/bfs/astar: SISB coverage ~0 (no address ever repeats) while")
    print("the delta learners cover misses; xalan flips the ordering —")
    print("its replayed access sequence is exactly what SISB records.")


if __name__ == "__main__":
    main()
