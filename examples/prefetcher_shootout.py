"""Full prefetcher shoot-out on one workload (a single Figure-4 column).

Runs every prefetcher from the paper's main comparison — BO, SISB,
Voyager, Delta-LSTM, SPP, Pythia, PATHFINDER, and the PF+NL+SISB
ensemble — on one workload, printing IPC speedup, accuracy, coverage,
and issue counts.

Usage::

    python examples/prefetcher_shootout.py [workload] [n_accesses]

Note: Voyager and Delta-LSTM train numpy LSTMs offline first, so this
example takes a minute or two.
"""

import sys

from repro.harness import Evaluation, format_table
from repro.harness.experiments import FIG4_PREFETCHERS


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "473-astar-s1"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 16_000

    evaluation = Evaluation(n_accesses=n_accesses, seed=1)
    baseline = evaluation.baseline(workload)
    print(f"workload={workload}  loads={n_accesses}  "
          f"baseline IPC={baseline.ipc:.3f}  "
          f"baseline misses={baseline.llc_misses}")
    print()

    rows = []
    for name in FIG4_PREFETCHERS:
        print(f"  running {name} ...", flush=True)
        result = evaluation.run(workload, name)
        rows.append([name, result.speedup, result.accuracy,
                     result.coverage, result.issued])

    print()
    print(format_table(
        ["Prefetcher", "IPC speedup", "Accuracy", "Coverage", "Issued"],
        rows, title=f"Figure-4 style comparison on {workload}"))


if __name__ == "__main__":
    main()
